//! Job specs, job lifecycle state and the bounded job engine behind
//! `mpe serve`.
//!
//! A [`JobSpec`] mirrors the CLI's estimation knobs field-for-field, and
//! the runner executes it through exactly the code path `mpe estimate
//! --json` uses — same [`EstimationConfig::for_deployment`] construction,
//! same source/kernel wiring, same report assembly — so a served report
//! is byte-identical to the CLI's for the same seed and configuration
//! (modulo the declared-volatile `wall_ms` and the server-only `job`
//! provenance block).
//!
//! The engine is a bounded FIFO queue in front of a fixed pool of runner
//! threads. Submission is admission-controlled: a full queue refuses the
//! job with a busy-class error (HTTP 429) instead of buffering without
//! limit. Each job carries its own [`CancelToken`], a bounded
//! [`SubscriberSink`] ring feeding the `/events` stream, and — when a
//! spool directory is configured — a crash-safe on-disk record (spec,
//! rolling checkpoint, terminal report) that lets a restarted daemon
//! resume unfinished jobs where they stopped.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use mpe_netlist::Iscas85;
use mpe_sim::{DelayModel, KernelMode, PowerConfig};
use mpe_vectors::PairGenerator;

use crate::checkpoint::{load_with_recovery, save_atomic};
use crate::config::{EstimationConfig, SamplePolicy};
use crate::error::{escape_json, AppError};
use crate::report::{EstimateReport, JobProvenance};
use crate::serve::cache::CircuitCache;
use crate::serve::json::Json;
use crate::session::{EstimatorBuilder, RunOptions, Session};
use crate::source::{PowerSourceFactory, SimulatorSource};
use crate::supervise::CancelToken;
use crate::telemetry::{SubscriberHub, SubscriberSink, Telemetry, DEFAULT_SUBSCRIBER_CAPACITY};
use crate::{Checkpoint, DelaySource, MaxPowerEstimate};

/// Which extreme statistic a job estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Maximum power (the paper's headline flow).
    Power,
    /// Maximum exercisable circuit delay (the paper's extension).
    Delay,
}

/// The usage error both deployment surfaces emit for a kernel/metric
/// combination no kernel implements. Shared verbatim between the CLI
/// (exit code 3) and the job API (HTTP 422) so the two fronts describe
/// the failure in the same words.
#[must_use]
pub fn kernel_usage_error(kernel: KernelMode) -> AppError {
    AppError::unsupported(format!(
        "the delay metric is measured on the scalar event engine; \
         `--kernel {kernel}` applies to power estimation only \
         (drop the flag or use `--kernel auto`)"
    ))
}

/// One job's estimation parameters: the CLI's flags as JSON fields, with
/// the CLI's defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// ISCAS85 profile for the synthetic stand-in (`--circuit`).
    pub circuit: Option<Iscas85>,
    /// Inline `.bench` netlist text (the `--bench` analogue; the API has
    /// no filesystem access to the client, so the text travels inline).
    pub bench: Option<String>,
    /// Subject name for an inline netlist (the CLI uses the file stem;
    /// default `netlist`).
    pub name: Option<String>,
    /// Synthetic-generator seed (`--gen-seed`, default 7).
    pub gen_seed: u64,
    /// `power` or `delay` (default `power`).
    pub metric: Metric,
    /// Target relative error (`--epsilon`, default 0.05).
    pub epsilon: f64,
    /// Confidence level (`--confidence`, default 0.90).
    pub confidence: f64,
    /// Finite vector-pair space size; 0 means infinite (`--population`,
    /// default 160000).
    pub population: u64,
    /// Estimation RNG seed (`--seed`, default 42).
    pub seed: u64,
    /// Worker threads (`--workers`, default 1; bit-identical for any N).
    pub workers: NonZeroUsize,
    /// `zero` | `unit` | `fanout` (`--delay-model`, default `unit`).
    pub delay_model: DelayModel,
    /// `auto` | `scalar` | `packed` | `packed128` (`--kernel`).
    pub kernel: KernelMode,
    /// Per-line input switching activity (`--activity`; default uniform).
    pub activity: Option<f64>,
    /// `fail` | `skip[:CAP]` | `retry[:N]` (`--sample-policy`).
    pub sample_policy: SamplePolicy,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            circuit: None,
            bench: None,
            name: None,
            gen_seed: 7,
            metric: Metric::Power,
            epsilon: 0.05,
            confidence: 0.90,
            population: 160_000,
            seed: 42,
            workers: NonZeroUsize::MIN,
            delay_model: DelayModel::Unit,
            kernel: KernelMode::Auto,
            activity: None,
            sample_policy: SamplePolicy::Fail,
        }
    }
}

impl JobSpec {
    /// Parses a request body into a spec, strictly: unknown fields are
    /// usage errors (a typo'd knob silently falling back to its default
    /// would waste a whole estimation run).
    ///
    /// # Errors
    ///
    /// Usage-class [`AppError`]s naming the offending field;
    /// unsupported-class for kernel/metric combinations no kernel
    /// implements.
    pub fn from_json(doc: &Json) -> Result<JobSpec, AppError> {
        const KNOWN: [&str; 14] = [
            "circuit",
            "bench",
            "name",
            "gen_seed",
            "metric",
            "epsilon",
            "confidence",
            "population",
            "seed",
            "workers",
            "delay_model",
            "kernel",
            "activity",
            "sample_policy",
        ];
        if !matches!(doc, Json::Obj(_)) {
            return Err(AppError::usage("job spec must be a JSON object"));
        }
        for key in doc.keys() {
            if !KNOWN.contains(&key) {
                return Err(AppError::usage(format!(
                    "unknown job spec field `{key}` (supported: {})",
                    KNOWN.join(", ")
                )));
            }
        }
        let str_field = |key: &str| -> Result<Option<&str>, AppError> {
            match doc.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_str()
                    .map(Some)
                    .ok_or_else(|| AppError::usage(format!("field `{key}` must be a string"))),
            }
        };
        let u64_field = |key: &str, default: u64| -> Result<u64, AppError> {
            match doc.get(key) {
                None => Ok(default),
                Some(v) => v.as_u64().ok_or_else(|| {
                    AppError::usage(format!("field `{key}` must be a non-negative integer"))
                }),
            }
        };
        let f64_field = |key: &str, default: f64| -> Result<f64, AppError> {
            match doc.get(key) {
                None => Ok(default),
                Some(v) => v
                    .as_f64()
                    .ok_or_else(|| AppError::usage(format!("field `{key}` must be a number"))),
            }
        };
        let defaults = JobSpec::default();
        let mut spec = JobSpec {
            circuit: match str_field("circuit")? {
                Some(name) => Some(
                    Iscas85::from_name(name)
                        .ok_or_else(|| AppError::usage(format!("unknown circuit `{name}`")))?,
                ),
                None => None,
            },
            bench: str_field("bench")?.map(str::to_string),
            name: str_field("name")?.map(str::to_string),
            gen_seed: u64_field("gen_seed", defaults.gen_seed)?,
            metric: match str_field("metric")? {
                None | Some("power") => Metric::Power,
                Some("delay") => Metric::Delay,
                Some(other) => {
                    return Err(AppError::usage(format!(
                        "unknown metric `{other}` (supported: power, delay)"
                    )))
                }
            },
            epsilon: f64_field("epsilon", defaults.epsilon)?,
            confidence: f64_field("confidence", defaults.confidence)?,
            population: u64_field("population", defaults.population)?,
            seed: u64_field("seed", defaults.seed)?,
            workers: NonZeroUsize::MIN,
            delay_model: match str_field("delay_model")? {
                None | Some("unit") => DelayModel::Unit,
                Some("zero") => DelayModel::Zero,
                Some("fanout") => DelayModel::fanout_default(),
                Some(other) => {
                    return Err(AppError::usage(format!("unknown delay model `{other}`")))
                }
            },
            kernel: match str_field("kernel")? {
                None => KernelMode::Auto,
                Some(name) => KernelMode::parse(name)
                    .ok_or_else(|| AppError::usage(format!("unknown kernel `{name}`")))?,
            },
            activity: match doc.get("activity") {
                None => None,
                Some(v) => Some(
                    v.as_f64()
                        .ok_or_else(|| AppError::usage("field `activity` must be a number"))?,
                ),
            },
            sample_policy: match str_field("sample_policy")? {
                None => SamplePolicy::Fail,
                Some(text) => SamplePolicy::parse(text).map_err(AppError::usage)?,
            },
        };
        let workers = u64_field("workers", 1)?;
        spec.workers = usize::try_from(workers)
            .ok()
            .and_then(NonZeroUsize::new)
            .ok_or_else(|| AppError::usage("field `workers` must be a positive integer"))?;
        spec.validate()?;
        Ok(spec)
    }

    /// Cross-field validation, shared by submission and spool recovery.
    ///
    /// # Errors
    ///
    /// Usage-class for a missing/ambiguous circuit or invalid activity;
    /// unsupported-class for the delay-metric/packed-kernel combination.
    pub fn validate(&self) -> Result<(), AppError> {
        match (&self.circuit, &self.bench) {
            (None, None) => {
                return Err(AppError::usage(
                    "select a circuit with `circuit` (ISCAS85 name) or `bench` (netlist text)",
                ))
            }
            (Some(_), Some(_)) => {
                return Err(AppError::usage(
                    "`circuit` and `bench` are mutually exclusive",
                ))
            }
            _ => {}
        }
        if self.metric == Metric::Delay
            && matches!(self.kernel, KernelMode::Packed | KernelMode::Packed128)
        {
            return Err(kernel_usage_error(self.kernel));
        }
        self.generator().map(|_| ())
    }

    /// The vector-pair generator this spec implies (mirrors the CLI's
    /// `--activity` handling, including validation).
    ///
    /// # Errors
    ///
    /// Usage-class for an out-of-range activity.
    pub fn generator(&self) -> Result<PairGenerator, AppError> {
        match self.activity {
            Some(activity) => {
                let g = PairGenerator::Activity { activity };
                g.validate(1).map_err(|e| AppError::usage(e.to_string()))?;
                Ok(g)
            }
            None => Ok(PairGenerator::Uniform),
        }
    }

    /// The estimation configuration this spec implies — via the same
    /// [`EstimationConfig::for_deployment`] constructor the CLI uses, so
    /// the two surfaces cannot drift.
    #[must_use]
    pub fn estimation_config(&self) -> EstimationConfig {
        EstimationConfig::for_deployment(
            self.epsilon,
            self.confidence,
            if self.population == 0 {
                None
            } else {
                Some(self.population)
            },
            self.sample_policy,
        )
    }

    /// Serialises the spec in the spelling [`from_json`](Self::from_json)
    /// accepts, for the crash-safe spool.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut fields: Vec<String> = Vec::new();
        if let Some(profile) = &self.circuit {
            fields.push(format!("\"circuit\":\"{profile}\""));
        }
        if let Some(text) = &self.bench {
            fields.push(format!("\"bench\":\"{}\"", escape_json(text)));
        }
        if let Some(name) = &self.name {
            fields.push(format!("\"name\":\"{}\"", escape_json(name)));
        }
        fields.push(format!("\"gen_seed\":{}", self.gen_seed));
        fields.push(format!(
            "\"metric\":\"{}\"",
            match self.metric {
                Metric::Power => "power",
                Metric::Delay => "delay",
            }
        ));
        fields.push(format!("\"epsilon\":{}", self.epsilon));
        fields.push(format!("\"confidence\":{}", self.confidence));
        fields.push(format!("\"population\":{}", self.population));
        fields.push(format!("\"seed\":{}", self.seed));
        fields.push(format!("\"workers\":{}", self.workers));
        fields.push(format!(
            "\"delay_model\":\"{}\"",
            match self.delay_model {
                DelayModel::Zero => "zero",
                DelayModel::Unit => "unit",
                DelayModel::FanoutProportional { .. } => "fanout",
            }
        ));
        fields.push(format!("\"kernel\":\"{}\"", self.kernel.as_str()));
        if let Some(a) = self.activity {
            fields.push(format!("\"activity\":{a}"));
        }
        fields.push(format!(
            "\"sample_policy\":\"{}\"",
            self.sample_policy.label()
        ));
        format!("{{{}}}", fields.join(","))
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug)]
pub enum JobPhase {
    /// Waiting in the bounded queue.
    Queued,
    /// Executing on a runner thread.
    Running,
    /// Finished with a report (the raw `EstimateReport::to_json` bytes).
    Done {
        /// The report, byte-identical to the CLI's for the same spec.
        report_json: String,
    },
    /// Finished with an error.
    Failed {
        /// What went wrong, in the unified CLI/server error shape.
        error: AppError,
    },
    /// Cancelled; a job caught mid-run still yields its valid partial
    /// report (`status: INTERRUPTED`), a queued one yields none.
    Cancelled {
        /// The partial report, if the run had started.
        report_json: Option<String>,
    },
}

impl JobPhase {
    /// The wire label used in status responses and spool records.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done { .. } => "done",
            JobPhase::Failed { .. } => "failed",
            JobPhase::Cancelled { .. } => "cancelled",
        }
    }

    fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobPhase::Done { .. } | JobPhase::Failed { .. } | JobPhase::Cancelled { .. }
        )
    }
}

struct JobState {
    phase: JobPhase,
    /// The producer half of the event ring, handed to the runner's
    /// telemetry when the job starts.
    sink: Option<SubscriberSink>,
    queue_wait_ms: Option<f64>,
}

/// One submitted job: immutable identity plus mutex-guarded lifecycle
/// state. Shared between the HTTP workers and the runner pool.
pub struct Job {
    /// Stable identifier (`j000001`, …), dense in submission order.
    pub id: String,
    /// The parameters this job runs with.
    pub spec: JobSpec,
    /// Submission wall-clock time (Unix milliseconds) — survives daemon
    /// restarts via the spool, so provenance is stable.
    pub submitted_unix_ms: u64,
    submitted_at: Instant,
    /// Trips a graceful stop: the engine commits the in-flight prefix
    /// and returns a valid partial result.
    pub cancel: CancelToken,
    /// Consumer side of the event ring feeding `/jobs/:id/events`.
    pub hub: SubscriberHub,
    state: Mutex<JobState>,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("id", &self.id)
            .field("status", &self.status_label())
            .finish_non_exhaustive()
    }
}

impl Job {
    fn new(id: String, spec: JobSpec, submitted_unix_ms: u64) -> Job {
        let (sink, hub) = SubscriberSink::bounded(DEFAULT_SUBSCRIBER_CAPACITY);
        Job {
            id,
            spec,
            submitted_unix_ms,
            submitted_at: Instant::now(),
            cancel: CancelToken::new(),
            hub,
            state: Mutex::new(JobState {
                phase: JobPhase::Queued,
                sink: Some(sink),
                queue_wait_ms: None,
            }),
        }
    }

    fn recovered_terminal(
        id: String,
        spec: JobSpec,
        submitted_unix_ms: u64,
        phase: JobPhase,
    ) -> Job {
        let job = Job::new(id, spec, submitted_unix_ms);
        {
            let mut st = job.state.lock().expect("job state poisoned");
            st.phase = phase;
            st.sink = None;
        }
        // No events will ever flow for a recovered terminal job; close
        // the ring so `/events` consumers see an immediate end-of-stream.
        job.hub.close();
        job
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, JobState> {
        self.state.lock().expect("job state poisoned")
    }

    /// The status document returned by `GET /jobs/:id`: lifecycle label,
    /// provenance, and — once terminal — the report or error, with the
    /// report JSON embedded verbatim.
    #[must_use]
    pub fn status_json(&self) -> String {
        let st = self.lock();
        let queue_wait = st
            .queue_wait_ms
            .map_or("null".to_string(), |ms| format!("{ms}"));
        let (report, error) = match &st.phase {
            JobPhase::Done { report_json } => (Some(report_json.clone()), None),
            JobPhase::Failed { error } => (None, Some(error.clone())),
            JobPhase::Cancelled { report_json } => (report_json.clone(), None),
            JobPhase::Queued | JobPhase::Running => (None, None),
        };
        format!(
            "{{\"id\":\"{}\",\"status\":\"{}\",\"submitted_unix_ms\":{},\
             \"queue_wait_ms\":{queue_wait},\"report\":{},\"error\":{}}}\n",
            escape_json(&self.id),
            st.phase.label(),
            self.submitted_unix_ms,
            report.as_deref().unwrap_or("null"),
            error.as_ref().map_or("null".to_string(), |e| {
                format!(
                    "{{\"kind\":\"{}\",\"message\":\"{}\"}}",
                    e.kind.label(),
                    escape_json(&e.message)
                )
            }),
        )
    }

    /// The raw report bytes, if the job produced a report (done, or
    /// cancelled mid-run with a valid partial result).
    #[must_use]
    pub fn report_json(&self) -> Option<String> {
        match &self.lock().phase {
            JobPhase::Done { report_json } => Some(report_json.clone()),
            JobPhase::Cancelled {
                report_json: Some(report_json),
            } => Some(report_json.clone()),
            _ => None,
        }
    }

    /// The current lifecycle label.
    #[must_use]
    pub fn status_label(&self) -> &'static str {
        self.lock().phase.label()
    }
}

struct QueueState {
    queue: VecDeque<Arc<Job>>,
    open: bool,
    running: usize,
}

struct EngineShared {
    queue: Mutex<QueueState>,
    work: Condvar,
    jobs: Mutex<Vec<Arc<Job>>>,
    next_id: AtomicU64,
    queue_capacity: usize,
    cache: CircuitCache,
    spool: Option<PathBuf>,
}

/// The bounded job queue plus its runner pool.
pub struct JobEngine {
    shared: Arc<EngineShared>,
    runners: Mutex<Vec<JoinHandle<()>>>,
}

fn unix_ms_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
}

impl JobEngine {
    /// Boots the engine: recovers any spooled jobs (terminal ones are
    /// re-registered with their stored reports; unfinished ones re-enter
    /// the queue and resume from their last checkpoint), then starts
    /// `runners` worker threads.
    ///
    /// # Errors
    ///
    /// Runtime-class [`AppError`] when the spool directory cannot be
    /// created or scanned.
    pub fn start(
        runners: usize,
        queue_capacity: usize,
        spool: Option<PathBuf>,
    ) -> Result<JobEngine, AppError> {
        let shared = Arc::new(EngineShared {
            queue: Mutex::new(QueueState {
                queue: VecDeque::new(),
                open: true,
                running: 0,
            }),
            work: Condvar::new(),
            jobs: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            queue_capacity: queue_capacity.max(1),
            cache: CircuitCache::new(),
            spool,
        });
        shared.recover_spool()?;
        let engine = JobEngine {
            shared: Arc::clone(&shared),
            runners: Mutex::new(Vec::new()),
        };
        let mut handles = engine.runners.lock().expect("runner registry poisoned");
        for i in 0..runners.max(1) {
            let shared = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("mpe-runner-{i}"))
                    .spawn(move || runner_loop(&shared))
                    .map_err(|e| AppError::runtime(format!("cannot spawn runner: {e}")))?,
            );
        }
        drop(handles);
        Ok(engine)
    }

    /// Admits a job or refuses it with backpressure.
    ///
    /// # Errors
    ///
    /// Usage/unsupported-class for an invalid spec, busy-class (HTTP
    /// 429) when the queue is at capacity, runtime-class when the spool
    /// cannot persist the spec or the engine is shutting down.
    pub fn submit(&self, spec: JobSpec) -> Result<Arc<Job>, AppError> {
        spec.validate()?;
        // Resolve the circuit up front: a bad inline netlist fails the
        // submission (not the run, minutes later), and the parse+pack
        // work lands in the shared cache before the runner needs it.
        self.shared.resolve_circuit(&spec)?;
        let job = {
            let mut q = self.shared.queue.lock().expect("job queue poisoned");
            if !q.open {
                return Err(AppError::runtime("server is shutting down"));
            }
            if q.queue.len() >= self.shared.queue_capacity {
                return Err(AppError::busy(format!(
                    "job queue is full ({} queued, capacity {}); retry after a job finishes",
                    q.queue.len(),
                    self.shared.queue_capacity
                )));
            }
            let id = format!(
                "j{:06}",
                self.shared.next_id.fetch_add(1, Ordering::Relaxed)
            );
            let job = Arc::new(Job::new(id, spec, unix_ms_now()));
            self.shared.spool_spec(&job)?;
            q.queue.push_back(Arc::clone(&job));
            job
        };
        self.shared
            .jobs
            .lock()
            .expect("job registry poisoned")
            .push(Arc::clone(&job));
        self.shared.work.notify_one();
        Ok(job)
    }

    /// Looks a job up by id.
    #[must_use]
    pub fn job(&self, id: &str) -> Option<Arc<Job>> {
        self.shared
            .jobs
            .lock()
            .expect("job registry poisoned")
            .iter()
            .find(|j| j.id == id)
            .cloned()
    }

    /// Requests cancellation: trips the job's token (a running job stops
    /// gracefully with a valid partial result) and finalises it
    /// immediately if it was still queued.
    ///
    /// # Errors
    ///
    /// Not-found-class for an unknown id.
    pub fn cancel(&self, id: &str) -> Result<Arc<Job>, AppError> {
        let job = self
            .job(id)
            .ok_or_else(|| AppError::not_found(format!("no such job `{id}`")))?;
        job.cancel.cancel();
        // A queued job never reaches a runner's finalisation path in
        // bounded time; settle it here. (The runner also skips cancelled
        // jobs it pops, so the queue entry becomes a no-op.)
        let still_queued = matches!(job.lock().phase, JobPhase::Queued);
        if still_queued {
            self.shared
                .finish(&job, JobPhase::Cancelled { report_json: None });
        }
        Ok(job)
    }

    /// The `/stats` document: lifecycle counts, queue occupancy and
    /// circuit-cache accounting.
    #[must_use]
    pub fn stats_json(&self) -> String {
        let jobs = self.shared.jobs.lock().expect("job registry poisoned");
        let mut counts = [0usize; 5];
        for job in jobs.iter() {
            let slot = match &job.lock().phase {
                JobPhase::Queued => 0,
                JobPhase::Running => 1,
                JobPhase::Done { .. } => 2,
                JobPhase::Failed { .. } => 3,
                JobPhase::Cancelled { .. } => 4,
            };
            counts[slot] += 1;
        }
        drop(jobs);
        let (entries, hits, misses) = self.shared.cache.stats();
        format!(
            "{{\"jobs\":{{\"queued\":{},\"running\":{},\"done\":{},\"failed\":{},\
             \"cancelled\":{}}},\"queue_capacity\":{},\
             \"circuit_cache\":{{\"entries\":{entries},\"hits\":{hits},\"misses\":{misses}}}}}\n",
            counts[0], counts[1], counts[2], counts[3], counts[4], self.shared.queue_capacity,
        )
    }

    /// Graceful shutdown: refuses new work, cancels queued jobs, trips
    /// running jobs' tokens (they stop gracefully, final checkpoint
    /// included) and joins the runner pool.
    pub fn shutdown(&self) {
        let drained: Vec<Arc<Job>> = {
            let mut q = self.shared.queue.lock().expect("job queue poisoned");
            q.open = false;
            q.queue.drain(..).collect()
        };
        self.shared.work.notify_all();
        for job in drained {
            job.cancel.cancel();
            self.shared
                .finish(&job, JobPhase::Cancelled { report_json: None });
        }
        for job in self
            .shared
            .jobs
            .lock()
            .expect("job registry poisoned")
            .iter()
        {
            if !job.lock().phase.is_terminal() {
                job.cancel.cancel();
            }
        }
        let handles: Vec<JoinHandle<()>> = self
            .runners
            .lock()
            .expect("runner registry poisoned")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl EngineShared {
    fn resolve_circuit(&self, spec: &JobSpec) -> Result<Arc<mpe_netlist::Circuit>, AppError> {
        match (&spec.circuit, &spec.bench) {
            (Some(profile), None) => self.cache.generated(*profile, spec.gen_seed),
            (None, Some(text)) => self
                .cache
                .bench(spec.name.as_deref().unwrap_or("netlist"), text),
            // validate() has already rejected the other combinations.
            _ => Err(AppError::usage(
                "select a circuit with `circuit` or `bench`",
            )),
        }
    }

    fn spool_file(&self, id: &str, suffix: &str) -> Option<PathBuf> {
        self.spool
            .as_ref()
            .map(|dir| dir.join(format!("{id}.{suffix}")))
    }

    fn spool_spec(&self, job: &Job) -> Result<(), AppError> {
        let Some(path) = self.spool_file(&job.id, "spec.json") else {
            return Ok(());
        };
        let record = format!(
            "{{\"id\":\"{}\",\"submitted_unix_ms\":{},\"spec\":{}}}\n",
            escape_json(&job.id),
            job.submitted_unix_ms,
            job.spec.to_json()
        );
        save_atomic(&path.to_string_lossy(), &record)
            .map_err(|e| AppError::runtime(format!("cannot spool job spec: {e}")))
    }

    /// Finalises a job: records the terminal phase, persists the outcome
    /// to the spool and closes the event stream.
    fn finish(&self, job: &Job, phase: JobPhase) {
        {
            let mut st = job.lock();
            // First terminal transition wins (cancel racing the runner).
            if st.phase.is_terminal() {
                return;
            }
            st.phase = phase;
        }
        self.spool_outcome(job);
        job.hub.close();
    }

    fn spool_outcome(&self, job: &Job) {
        let Some(dir) = &self.spool else { return };
        let st = job.lock();
        let (report, error) = match &st.phase {
            JobPhase::Done { report_json } => (Some(report_json.clone()), None),
            JobPhase::Cancelled { report_json } => (report_json.clone(), None),
            JobPhase::Failed { error } => (None, Some(error.clone())),
            JobPhase::Queued | JobPhase::Running => return,
        };
        let label = st.phase.label();
        drop(st);
        if let Some(report) = report {
            let path = dir.join(format!("{}.report.json", job.id));
            // Spool writes are best-effort: a full disk must not take the
            // in-memory result down with it.
            let _ = save_atomic(&path.to_string_lossy(), &report);
        }
        let error_json = error.map_or("null".to_string(), |e| {
            format!(
                "{{\"kind\":\"{}\",\"message\":\"{}\"}}",
                e.kind.label(),
                escape_json(&e.message)
            )
        });
        let record = format!(
            "{{\"id\":\"{}\",\"status\":\"{label}\",\"error\":{error_json}}}\n",
            escape_json(&job.id)
        );
        let path = dir.join(format!("{}.result.json", job.id));
        let _ = save_atomic(&path.to_string_lossy(), &record);
    }

    /// Rebuilds the job registry from a spool directory: jobs with a
    /// terminal record come back as-is (report included); the rest
    /// re-enter the queue and will resume from their checkpoints.
    fn recover_spool(&self) -> Result<(), AppError> {
        let Some(dir) = self.spool.clone() else {
            return Ok(());
        };
        std::fs::create_dir_all(&dir).map_err(|e| {
            AppError::runtime(format!("cannot create spool `{}`: {e}", dir.display()))
        })?;
        let mut specs: Vec<PathBuf> = std::fs::read_dir(&dir)
            .map_err(|e| AppError::runtime(format!("cannot read spool `{}`: {e}", dir.display())))?
            .filter_map(Result::ok)
            .map(|entry| entry.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.ends_with(".spec.json"))
            })
            .collect();
        specs.sort();
        let mut max_id = 0u64;
        for path in specs {
            let Some((job, finished)) = recover_one(&dir, &path) else {
                continue;
            };
            if let Some(n) = job.id.strip_prefix('j').and_then(|n| n.parse::<u64>().ok()) {
                max_id = max_id.max(n);
            }
            let job = Arc::new(job);
            self.jobs
                .lock()
                .expect("job registry poisoned")
                .push(Arc::clone(&job));
            if !finished {
                self.queue
                    .lock()
                    .expect("job queue poisoned")
                    .queue
                    .push_back(job);
            }
        }
        self.next_id.store(max_id + 1, Ordering::Relaxed);
        Ok(())
    }
}

/// Reads one spooled job back; `None` (skip, keep serving) when the
/// record is unreadable. The bool says whether the job was terminal.
fn recover_one(dir: &Path, spec_path: &Path) -> Option<(Job, bool)> {
    let text = std::fs::read_to_string(spec_path).ok()?;
    let doc = crate::serve::json::parse(&text).ok()?;
    let id = doc.get("id")?.as_str()?.to_string();
    let submitted = doc.get("submitted_unix_ms").and_then(Json::as_u64)?;
    let spec = JobSpec::from_json(doc.get("spec")?).ok()?;
    let result_path = dir.join(format!("{id}.result.json"));
    let Ok(result_text) = std::fs::read_to_string(&result_path) else {
        return Some((Job::new(id, spec, submitted), false));
    };
    let result = crate::serve::json::parse(&result_text).ok()?;
    let report = std::fs::read_to_string(dir.join(format!("{id}.report.json"))).ok();
    let phase = match result.get("status").and_then(Json::as_str) {
        Some("done") => JobPhase::Done {
            report_json: report?,
        },
        Some("cancelled") => JobPhase::Cancelled {
            report_json: report,
        },
        Some("failed") => JobPhase::Failed {
            error: AppError::runtime(
                result
                    .get("error")
                    .and_then(|e| e.get("message"))
                    .and_then(Json::as_str)
                    .unwrap_or("job failed before the daemon restarted"),
            ),
        },
        // An unknown/missing terminal status: treat as unfinished and
        // rerun — determinism makes the rerun land on the same report.
        _ => return Some((Job::new(id, spec, submitted), false)),
    };
    Some((Job::recovered_terminal(id, spec, submitted, phase), true))
}

fn runner_loop(shared: &Arc<EngineShared>) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("job queue poisoned");
            loop {
                if let Some(job) = q.queue.pop_front() {
                    q.running += 1;
                    break job;
                }
                if !q.open {
                    return;
                }
                q = shared.work.wait(q).expect("job queue poisoned");
            }
        };
        run_one(shared, &job);
        shared.queue.lock().expect("job queue poisoned").running -= 1;
    }
}

fn run_one(shared: &EngineShared, job: &Arc<Job>) {
    if job.cancel.is_cancelled() {
        shared.finish(job, JobPhase::Cancelled { report_json: None });
        return;
    }
    let queue_wait_ms = 1e3 * job.submitted_at.elapsed().as_secs_f64();
    let sink = {
        let mut st = job.lock();
        st.phase = JobPhase::Running;
        st.queue_wait_ms = Some(queue_wait_ms);
        st.sink.take()
    };
    let outcome = execute(shared, job, queue_wait_ms, sink);
    let cancelled = job.cancel.is_cancelled();
    let phase = match (outcome, cancelled) {
        (Ok(report_json), false) => JobPhase::Done { report_json },
        (Ok(report_json), true) => JobPhase::Cancelled {
            report_json: Some(report_json),
        },
        (Err(_), true) => JobPhase::Cancelled { report_json: None },
        (Err(error), false) => JobPhase::Failed { error },
    };
    shared.finish(job, phase);
}

/// Executes one job through the CLI's exact estimation path and returns
/// the report JSON. Kept in lockstep with `run_estimate` in
/// `src/bin/mpe.rs` — the served-vs-CLI byte-identity test in
/// `tests/serve.rs` fails if the two drift.
fn execute(
    shared: &EngineShared,
    job: &Arc<Job>,
    queue_wait_ms: f64,
    sink: Option<SubscriberSink>,
) -> Result<String, AppError> {
    let spec = &job.spec;
    let circuit = shared.resolve_circuit(spec)?;
    let generator = spec.generator()?;
    let config = spec.estimation_config();
    let telemetry = Telemetry::enabled();
    if let Some(sink) = sink {
        telemetry.add_sink(Box::new(sink));
    }
    let session = EstimatorBuilder::new(config)
        .telemetry(telemetry.clone())
        .build();
    let ckpt = shared
        .spool_file(&job.id, "ckpt")
        .map(|p| p.to_string_lossy().into_owned());
    let started = Instant::now();
    let (estimate, metric_name, kernel) = match spec.metric {
        Metric::Power => {
            let source = SimulatorSource::new(
                &circuit,
                generator,
                spec.delay_model,
                PowerConfig::default(),
            )
            .with_kernel(spec.kernel);
            let kernel = source.kernel();
            (
                supervised_run(&session, &source, job, ckpt.as_deref())?,
                "max_power_mw",
                kernel,
            )
        }
        Metric::Delay => {
            let source = DelaySource::new(&circuit, generator, spec.delay_model);
            (
                supervised_run(&session, &source, job, ckpt.as_deref())?,
                "max_delay_units",
                KernelMode::Scalar,
            )
        }
    };
    let wall_ms = 1e3 * started.elapsed().as_secs_f64();
    telemetry.flush();
    let host_parallelism = std::thread::available_parallelism()
        .ok()
        .map(NonZeroUsize::get);
    // Identical assembly to the CLI's `--json` branch, plus the
    // server-only provenance block. No telemetry block: the daemon's
    // always-on event ring is a transport detail, and attaching the
    // snapshot would break byte-identity with a plain CLI run.
    let report = EstimateReport::new(circuit.name(), metric_name, &estimate)
        .with_execution(spec.workers.get(), Some(wall_ms))
        .with_kernel(kernel.as_str(), kernel.lanes(), host_parallelism)
        .with_job(JobProvenance {
            job_id: job.id.clone(),
            submitted_unix_ms: job.submitted_unix_ms,
            queue_wait_ms,
        });
    Ok(report.to_json())
}

fn supervised_run<F: PowerSourceFactory>(
    session: &Session,
    factory: &F,
    job: &Arc<Job>,
    ckpt: Option<&str>,
) -> Result<MaxPowerEstimate, AppError> {
    let opts = RunOptions::default()
        .seeded(job.spec.seed)
        .workers(job.spec.workers)
        .cancel_token(job.cancel.clone());
    let Some(path) = ckpt else {
        return Ok(session.run(factory, opts)?);
    };
    // A torn or unparseable checkpoint (including every checkpoint in
    // offline builds, where the stubbed serde cannot round-trip) degrades
    // to a fresh run: determinism lands the rerun on the identical
    // result, just without the saved head start.
    let resume = load_with_recovery(path, Checkpoint::from_json)
        .ok()
        .flatten()
        .map(|(cp, _)| cp);
    let mut save = |cp: &Checkpoint| {
        let _ = save_atomic(path, &cp.to_json());
    };
    let mut opts = opts.save_with(&mut save);
    if let Some(cp) = &resume {
        opts = opts.resume(cp);
    }
    match session.run(factory, opts) {
        Ok(estimate) => Ok(estimate),
        // A checkpoint the engine itself rejects (old daemon version,
        // edited spool) should not kill the job either: rerun clean.
        Err(crate::MaxPowerError::CheckpointMismatch { .. }) => {
            let mut save = |cp: &Checkpoint| {
                let _ = save_atomic(path, &cp.to_json());
            };
            let opts = RunOptions::default()
                .seeded(job.spec.seed)
                .workers(job.spec.workers)
                .cancel_token(job.cancel.clone())
                .save_with(&mut save);
            Ok(session.run(factory, opts)?)
        }
        Err(e) => Err(e.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::json;

    fn spec_from(text: &str) -> Result<JobSpec, AppError> {
        JobSpec::from_json(&json::parse(text).expect("test body parses"))
    }

    #[test]
    fn spec_defaults_mirror_the_cli() {
        let spec = spec_from(r#"{"circuit":"C432"}"#).expect("minimal spec parses");
        assert_eq!(spec.gen_seed, 7);
        assert_eq!(spec.epsilon, 0.05);
        assert_eq!(spec.confidence, 0.90);
        assert_eq!(spec.population, 160_000);
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.workers.get(), 1);
        assert_eq!(spec.delay_model, DelayModel::Unit);
        assert_eq!(spec.kernel, KernelMode::Auto);
        assert_eq!(spec.sample_policy, SamplePolicy::Fail);
        let config = spec.estimation_config();
        assert_eq!(config.relative_error, 0.05);
        assert_eq!(config.finite_population, Some(160_000));
        assert_eq!(config.max_hyper_samples, 500);
        assert_eq!(config.min_reading_mw, 0.0);
    }

    #[test]
    fn spec_rejects_unknown_fields_and_bad_values() {
        for (body, needle) in [
            (r#"{"circuit":"C432","epsilonn":0.1}"#, "epsilonn"),
            (r#"{"circuit":"C9999"}"#, "C9999"),
            (r#"{}"#, "circuit"),
            (r#"{"circuit":"C432","bench":"x"}"#, "mutually exclusive"),
            (r#"{"circuit":"C432","workers":0}"#, "workers"),
            (r#"{"circuit":"C432","metric":"area"}"#, "area"),
            (r#"{"circuit":"C432","sample_policy":"bogus"}"#, "bogus"),
            (r#"{"circuit":"C432","activity":1.5}"#, "activity"),
        ] {
            let err = spec_from(body).expect_err(body);
            assert!(
                err.to_string().contains(needle),
                "`{body}` → `{err}` (wanted `{needle}`)"
            );
        }
    }

    #[test]
    fn delay_metric_with_packed_kernel_is_unsupported() {
        let err = spec_from(r#"{"circuit":"C432","metric":"delay","kernel":"packed"}"#)
            .expect_err("combination rejected");
        assert_eq!(err.kind.http_status().0, 422);
        assert!(err.to_string().contains("delay metric"));
    }

    #[test]
    fn spec_roundtrips_through_its_spool_spelling() {
        let spec = spec_from(
            r#"{"circuit":"C880","metric":"delay","epsilon":0.1,"confidence":0.95,
                "population":0,"seed":9,"workers":4,"delay_model":"fanout",
                "kernel":"scalar","activity":0.3,"sample_policy":"skip:50"}"#,
        )
        .expect("full spec parses");
        let back = spec_from(&spec.to_json()).expect("spool spelling parses");
        assert_eq!(spec, back);
        let bench = spec_from(r#"{"bench":"INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n","name":"t"}"#)
            .expect("bench spec parses");
        assert_eq!(bench, spec_from(&bench.to_json()).expect("roundtrips"));
    }

    #[test]
    fn queue_full_submission_is_refused_with_busy() {
        // One runner, capacity 1: the runner takes the first job, the
        // second fills the queue, the third must bounce with 429.
        let engine = JobEngine::start(1, 1, None).expect("engine starts");
        let slow = spec_from(r#"{"circuit":"C432","epsilon":0.0001}"#).expect("spec");
        let first = engine.submit(slow.clone()).expect("first admitted");
        // Wait until the runner has actually claimed the first job so the
        // queue is empty for the second.
        for _ in 0..500 {
            if first.status_label() != "queued" {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let _second = engine.submit(slow.clone()).expect("second queues");
        let err = engine.submit(slow).expect_err("third refused");
        assert_eq!(err.kind.http_status().0, 429);
        assert!(err.to_string().contains("queue is full"));
        // Cancel everything so shutdown is quick.
        for id in ["j000001", "j000002"] {
            engine.cancel(id).expect("cancel known job");
        }
        engine.shutdown();
    }

    #[test]
    fn cancelled_queued_job_finalises_without_running() {
        let engine = JobEngine::start(1, 4, None).expect("engine starts");
        let slow = spec_from(r#"{"circuit":"C432","epsilon":0.0001}"#).expect("spec");
        let _running = engine.submit(slow.clone()).expect("first admitted");
        let queued = engine.submit(slow).expect("second queues");
        let cancelled = engine.cancel(&queued.id).expect("cancel succeeds");
        assert_eq!(cancelled.status_label(), "cancelled");
        assert!(cancelled.report_json().is_none());
        // The event stream ends immediately for a job that never ran.
        assert!(queued.hub.subscribe().wait().is_none());
        assert!(engine.cancel("j999999").is_err());
        engine.cancel("j000001").expect("cancel the running job");
        engine.shutdown();
    }

    #[test]
    fn completed_job_reports_done_with_provenance() {
        let engine = JobEngine::start(2, 8, None).expect("engine starts");
        let spec = spec_from(r#"{"circuit":"C432","epsilon":0.2}"#).expect("spec");
        let job = engine.submit(spec).expect("admitted");
        let mut sub = job.hub.subscribe();
        let mut events = 0usize;
        while let Some(batch) = sub.wait() {
            events += batch.events.len();
        }
        // The hub closes only on finalisation, so the job is terminal.
        assert_eq!(job.status_label(), "done");
        assert!(events > 0, "a run must emit telemetry events");
        let status = job.status_json();
        assert!(status.contains("\"status\":\"done\""), "{status}");
        assert!(status.contains("\"queue_wait_ms\":"), "{status}");
        assert!(job.report_json().is_some());
        let (_, hits, misses) = engine.shared.cache.stats();
        assert_eq!((hits, misses), (1, 1), "submit warms, runner hits");
        engine.shutdown();
    }
}
