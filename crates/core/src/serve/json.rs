//! A minimal JSON value model for the job API.
//!
//! The workspace's `serde_json` dependency is stubbed out in offline
//! builds, so the daemon cannot rely on it for *parsing* request bodies —
//! and must not, or `mpe serve` would silently accept only empty specs in
//! exactly the environments the offline test rig exercises. This module
//! is a self-contained recursive-descent parser over the full JSON
//! grammar (objects, arrays, strings with escapes, numbers, literals)
//! plus the handful of typed accessors the job-spec layer needs.
//!
//! It is deliberately small: no serialisation framework (responses are
//! assembled by string formatting against [`crate::error::escape_json`]),
//! no number-preservation subtleties (every number is an `f64`, which
//! covers every field the API accepts), and a depth limit instead of a
//! clever iterative parser (a request body is human-sized).

use std::collections::BTreeMap;

/// Maximum nesting depth accepted by [`parse`]; beyond this the input is
/// rejected rather than risking a stack overflow on adversarial bodies.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string, with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is irrelevant to the API, so a sorted map
    /// keeps lookups simple and `Debug` output stable.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object; `None` for absent keys, `null` members
    /// and non-objects alike (the spec layer treats all three as
    /// "not provided").
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key).filter(|v| !matches!(v, Json::Null)),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one
    /// exactly (rejects fractions, negatives and values beyond 2⁵³).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= 9_007_199_254_740_992.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The object's keys, for strict unknown-field rejection.
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(map) => map.keys().map(String::as_str).collect(),
            _ => Vec::new(),
        }
    }
}

/// Parses one complete JSON document; trailing non-whitespace is an
/// error.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error, with
/// its byte offset.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}",
                char::from(byte),
                self.pos
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected `{}` at byte {}",
                char::from(other),
                self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("invalid \\u escape `{hex}`"))?;
                            self.pos += 4;
                            // Surrogate pairs are rare in specs; map lone
                            // surrogates to the replacement character
                            // rather than rejecting the request.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("invalid escape `\\{}`", char::from(other))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8".to_string())?;
                    let ch = s.chars().next().ok_or_else(|| "empty string".to_string())?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') = self.peek() {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        let n: f64 = text
            .parse()
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))?;
        if !n.is_finite() {
            return Err(format!("non-finite number `{text}`"));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_nested_document() {
        let doc = parse(
            r#"{"circuit":"C432","epsilon":0.05,"tags":["a","b"],
                "nested":{"deep":true,"none":null},"neg":-2.5e-1}"#,
        )
        .expect("valid document parses");
        assert_eq!(doc.get("circuit").and_then(Json::as_str), Some("C432"));
        assert_eq!(doc.get("epsilon").and_then(Json::as_f64), Some(0.05));
        assert_eq!(
            doc.get("nested").and_then(|n| n.get("deep")),
            Some(&Json::Bool(true))
        );
        // null members read as absent, like missing keys.
        assert!(doc.get("nested").expect("nested").get("none").is_none());
        assert_eq!(doc.get("neg").and_then(Json::as_f64), Some(-0.25));
    }

    #[test]
    fn resolves_string_escapes() {
        let doc = parse(r#"{"s":"a\"b\\c\ndA"}"#).expect("escapes parse");
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn integer_accessor_rejects_fractions_and_negatives() {
        let doc = parse(r#"{"a":7,"b":7.5,"c":-7}"#).expect("parses");
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(7));
        assert_eq!(doc.get("b").and_then(Json::as_u64), None);
        assert_eq!(doc.get("c").and_then(Json::as_u64), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            r#"{"a" 1}"#,
            r#"{"a":1} extra"#,
            "truthy",
            "1e999",
            r#""unterminated"#,
        ] {
            assert!(parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn depth_limit_rejects_pathological_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(30) + &"]".repeat(30);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn roundtrips_a_report_sized_document() {
        // The daemon embeds `EstimateReport::to_json` output verbatim in
        // status responses; make sure the parser handles that shape.
        let doc = parse(
            r#"{
  "schema_version": 9,
  "subject": "C432",
  "estimate": 12.5,
  "history": [{"k": 1, "estimate_mw": 12.0}],
  "job": {"job_id": "j000001", "queue_wait_ms": 0.25}
}"#,
        )
        .expect("report-shaped document parses");
        assert_eq!(doc.get("schema_version").and_then(Json::as_u64), Some(9));
        assert_eq!(
            doc.get("job")
                .and_then(|j| j.get("job_id"))
                .and_then(Json::as_str),
            Some("j000001")
        );
    }
}
