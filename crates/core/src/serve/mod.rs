//! `mpe serve` — a long-lived estimation daemon with an HTTP/JSON job
//! API.
//!
//! The CLI's one-shot subcommands pay circuit parsing, topological
//! sorting and CSR packing on every invocation; a deployment screening
//! many configurations against one circuit wants those costs amortised
//! and the runs supervised. This module turns the estimation pipeline
//! into a daemon:
//!
//! * [`jobs::JobEngine`] — a bounded FIFO job queue (backpressure via
//!   HTTP 429) in front of a fixed runner pool; every job gets its own
//!   [`CancelToken`](crate::CancelToken) and bounded event ring.
//! * [`cache::CircuitCache`] — parse + topo-sort + CSR packing once per
//!   distinct circuit, shared by every job that names it.
//! * [`Server`] — a hand-rolled `std::net` HTTP front end (the workspace
//!   adds no dependencies): framed JSON responses for control endpoints,
//!   an unframed NDJSON stream for live telemetry.
//! * crash-safe spooling — specs, rolling checkpoints and terminal
//!   reports persist under `--spool DIR`; a restarted daemon re-registers
//!   finished jobs and resumes unfinished ones from their checkpoints.
//!
//! Routes:
//!
//! | method & path            | behaviour                                   |
//! |--------------------------|---------------------------------------------|
//! | `POST /jobs`             | submit a [`jobs::JobSpec`] → `202` + job id |
//! | `GET /jobs/:id`          | status + embedded report once done          |
//! | `GET /jobs/:id/report`   | the raw report (CLI-byte-identical)         |
//! | `GET /jobs/:id/events`   | NDJSON event stream (schema v2)             |
//! | `POST /jobs/:id/cancel`  | graceful stop, partial result kept          |
//! | `GET /healthz`           | liveness                                    |
//! | `GET /stats`             | queue/lifecycle/cache counters              |
//! | `POST /shutdown`         | graceful daemon shutdown                    |
//!
//! Every failure is an [`AppError`]: the HTTP body carries the same
//! kind + message the CLI prints on stderr, so a failure reads the same
//! in a terminal and in a client.

pub mod cache;
pub mod http;
pub mod jobs;
pub mod json;

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::error::AppError;
use crate::supervise::CancelToken;

use http::Request;
use jobs::{JobEngine, JobSpec};

/// How often the accept loop checks the shutdown token while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Daemon configuration (the `mpe serve` flags).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (the bound address
    /// is reported by [`Server::local_addr`]).
    pub addr: String,
    /// Estimation runner threads.
    pub runners: usize,
    /// HTTP worker threads (cheap; they mostly block on I/O).
    pub http_threads: usize,
    /// Bounded queue depth; a submission beyond it is refused with 429.
    pub queue_depth: usize,
    /// Spool directory for crash-safe job state; `None` disables
    /// persistence and restart-resume.
    pub spool: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            runners: 2,
            http_threads: 4,
            queue_depth: 16,
            spool: None,
        }
    }
}

/// A bound, not-yet-serving daemon. [`Server::run`] blocks until the
/// shutdown token trips (SIGTERM via the CLI, or `POST /shutdown`).
pub struct Server {
    listener: TcpListener,
    engine: Arc<JobEngine>,
    shutdown: CancelToken,
    http_threads: usize,
}

impl Server {
    /// Binds the listener and boots the job engine (including spool
    /// recovery), without accepting connections yet.
    ///
    /// # Errors
    ///
    /// Runtime-class [`AppError`] when the address cannot be bound or
    /// the spool directory is unusable.
    pub fn bind(config: ServerConfig, shutdown: CancelToken) -> Result<Server, AppError> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| AppError::runtime(format!("cannot bind `{}`: {e}", config.addr)))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| AppError::runtime(format!("cannot configure listener: {e}")))?;
        let engine = Arc::new(JobEngine::start(
            config.runners,
            config.queue_depth,
            config.spool,
        )?);
        Ok(Server {
            listener,
            engine,
            shutdown,
            http_threads: config.http_threads.max(1),
        })
    }

    /// The actually-bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// Runtime-class [`AppError`] if the socket address cannot be read
    /// back (never in practice).
    pub fn local_addr(&self) -> Result<SocketAddr, AppError> {
        self.listener
            .local_addr()
            .map_err(|e| AppError::runtime(format!("cannot read bound address: {e}")))
    }

    /// Serves until the shutdown token trips, then drains gracefully:
    /// stops accepting, cancels queued/running jobs (running ones stop
    /// gracefully and keep their partial results), joins the runner pool
    /// and the HTTP workers.
    ///
    /// # Errors
    ///
    /// Runtime-class [`AppError`] when an HTTP worker cannot be spawned.
    pub fn run(self) -> Result<(), AppError> {
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::new();
        for i in 0..self.http_threads {
            let rx = Arc::clone(&rx);
            let engine = Arc::clone(&self.engine);
            let shutdown = self.shutdown.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("mpe-http-{i}"))
                    .spawn(move || loop {
                        let stream = {
                            let guard = rx.lock().expect("http queue poisoned");
                            guard.recv()
                        };
                        match stream {
                            Ok(stream) => handle_connection(stream, &engine, &shutdown),
                            Err(_) => return,
                        }
                    })
                    .map_err(|e| AppError::runtime(format!("cannot spawn http worker: {e}")))?,
            );
        }
        while !self.shutdown.is_cancelled() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // The listener is non-blocking; per-connection I/O is
                    // blocking with a timeout so a stalled client cannot
                    // pin a worker forever.
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => std::thread::sleep(ACCEPT_POLL),
            }
        }
        // Drain: no new connections, finish the engine first so event
        // streams close and blocked workers can run out.
        self.engine.shutdown();
        drop(tx);
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// Serves one connection: parse, route, respond, close.
fn handle_connection(stream: TcpStream, engine: &Arc<JobEngine>, shutdown: &CancelToken) {
    let mut reader = BufReader::new(stream);
    let request = match http::read_request(&mut reader) {
        Ok(request) => request,
        Err(err) => {
            let mut stream = reader.into_inner();
            http::write_error(&mut stream, &err);
            return;
        }
    };
    let mut stream = reader.into_inner();
    match route(&request, engine, shutdown, &mut stream) {
        Ok(Routed::Responded) => {}
        Ok(Routed::Body { status, body }) => {
            let reason = match status {
                202 => "Accepted",
                _ => "OK",
            };
            http::write_response(&mut stream, status, reason, &body);
        }
        Err(err) => http::write_error(&mut stream, &err),
    }
}

enum Routed {
    /// The handler already wrote the response (event streams).
    Responded,
    /// A framed JSON response to write.
    Body { status: u16, body: String },
}

fn route(
    request: &Request,
    engine: &Arc<JobEngine>,
    shutdown: &CancelToken,
    stream: &mut TcpStream,
) -> Result<Routed, AppError> {
    let ok = |body: String| Ok(Routed::Body { status: 200, body });
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => ok("{\"status\":\"ok\"}\n".to_string()),
        ("GET", "/stats") => ok(engine.stats_json()),
        ("POST", "/shutdown") => {
            shutdown.cancel();
            ok("{\"status\":\"shutting down\"}\n".to_string())
        }
        ("POST", "/jobs") => {
            let doc = json::parse(&request.body)
                .map_err(|e| AppError::usage(format!("invalid JSON body: {e}")))?;
            let spec = JobSpec::from_json(&doc)?;
            let job = engine.submit(spec)?;
            Ok(Routed::Body {
                status: 202,
                body: format!("{{\"id\":\"{}\",\"status\":\"queued\"}}\n", job.id),
            })
        }
        (method, path) => {
            let Some(rest) = path.strip_prefix("/jobs/") else {
                return Err(AppError::not_found(format!("no route for `{path}`")));
            };
            let (id, action) = match rest.split_once('/') {
                Some((id, action)) => (id, Some(action)),
                None => (rest, None),
            };
            let job = engine
                .job(id)
                .ok_or_else(|| AppError::not_found(format!("no such job `{id}`")))?;
            match (method, action) {
                ("GET", None) => ok(job.status_json()),
                ("GET", Some("report")) => {
                    let report = job.report_json().ok_or_else(|| {
                        AppError::not_found(format!(
                            "job `{id}` has no report (status: {})",
                            job.status_label()
                        ))
                    })?;
                    // The CLI prints the report with a trailing newline;
                    // serve the same bytes so `diff` is clean.
                    ok(format!("{report}\n"))
                }
                ("POST", Some("cancel")) => {
                    let job = engine.cancel(id)?;
                    ok(format!(
                        "{{\"id\":\"{}\",\"status\":\"{}\"}}\n",
                        job.id,
                        job.status_label()
                    ))
                }
                ("GET", Some("events")) => {
                    stream_events(&job, stream);
                    Ok(Routed::Responded)
                }
                _ => Err(AppError::not_found(format!(
                    "no route for `{method} {path}`"
                ))),
            }
        }
    }
}

/// Streams the job's telemetry ring as NDJSON until the job finishes
/// (the hub closes) or the client hangs up. Subscribers that fall behind
/// the bounded ring lose events — counted, never blocking the run.
fn stream_events(job: &jobs::Job, stream: &mut TcpStream) {
    if http::start_ndjson_stream(stream).is_err() {
        return;
    }
    // Event streams outlive the 10 s request-read timeout by design.
    let _ = stream.set_read_timeout(None);
    let mut subscriber = job.hub.subscribe();
    while let Some(batch) = subscriber.wait() {
        for event in &batch.events {
            if stream
                .write_all(event.to_json_line().as_bytes())
                .and_then(|()| stream.write_all(b"\n"))
                .is_err()
            {
                return;
            }
        }
        if stream.flush().is_err() {
            return;
        }
    }
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn request(addr: SocketAddr, head: &str, body: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connects");
        write!(
            stream,
            "{head} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("request writes");
        let mut text = String::new();
        stream.read_to_string(&mut text).expect("response reads");
        let status: u16 = text
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let body = text
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    /// One in-process end-to-end pass over every route: submit, status,
    /// report, events, cancel, stats, shutdown, plus the 4xx paths.
    #[test]
    fn daemon_serves_a_job_end_to_end() {
        let shutdown = CancelToken::new();
        let server = Server::bind(
            ServerConfig {
                runners: 1,
                http_threads: 2,
                queue_depth: 4,
                ..ServerConfig::default()
            },
            shutdown.clone(),
        )
        .expect("binds");
        let addr = server.local_addr().expect("bound address");
        let serving = std::thread::spawn(move || server.run());

        let (status, body) = request(addr, "GET /healthz", "");
        assert_eq!((status, body.as_str()), (200, "{\"status\":\"ok\"}\n"));

        let (status, body) = request(addr, "POST /jobs", r#"{"circuit":"C432","epsilon":0.2}"#);
        assert_eq!(status, 202, "{body}");
        assert!(body.contains("\"id\":\"j000001\""), "{body}");

        // 4xx family: bad JSON, bad spec, unknown route, unknown job.
        let (status, body) = request(addr, "POST /jobs", "not json");
        assert_eq!(status, 400);
        assert!(body.contains("\"kind\":\"usage\""), "{body}");
        let (status, body) = request(
            addr,
            "POST /jobs",
            r#"{"circuit":"C432","metric":"delay","kernel":"packed"}"#,
        );
        assert_eq!(status, 422);
        assert!(body.contains("delay metric"), "{body}");
        let (status, _) = request(addr, "GET /nope", "");
        assert_eq!(status, 404);
        let (status, _) = request(addr, "GET /jobs/j999999", "");
        assert_eq!(status, 404);

        // The event stream drains to end-of-stream when the job is done.
        let mut stream = TcpStream::connect(addr).expect("connects");
        write!(
            stream,
            "GET /jobs/j000001/events HTTP/1.1\r\nHost: t\r\n\r\n"
        )
        .expect("request writes");
        let mut text = String::new();
        stream.read_to_string(&mut text).expect("stream drains");
        let events = text.split_once("\r\n\r\n").expect("headers present").1;
        assert!(
            events.lines().count() > 0,
            "the run must stream telemetry events"
        );
        for line in events.lines() {
            crate::telemetry::EventRecord::parse_json_line(line).expect("valid schema-v2 event");
        }

        let (status, body) = request(addr, "GET /jobs/j000001", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"done\""), "{body}");
        let (status, report) = request(addr, "GET /jobs/j000001/report", "");
        assert_eq!(status, 200);
        assert!(report.ends_with('\n'));

        let (status, body) = request(addr, "GET /stats", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"done\":1"), "{body}");
        assert!(body.contains("\"circuit_cache\""), "{body}");

        let (status, _) = request(addr, "POST /shutdown", "");
        assert_eq!(status, 200);
        serving
            .join()
            .expect("server thread joins")
            .expect("clean shutdown");
    }
}
