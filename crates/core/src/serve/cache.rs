//! The shared circuit cache: parse + topological sort + CSR adjacency
//! packing happen once per distinct circuit, not once per job.
//!
//! Jobs reference circuits either by ISCAS85 profile name (deterministic
//! synthetic stand-in, keyed by `(name, generator seed)`) or by inline
//! `.bench` text (keyed by a content hash plus the subject name, since
//! the name flows into the report). Both map to an `Arc<Circuit>` that
//! concurrent runners share; `Circuit` is immutable after construction,
//! so no per-job copy is ever needed.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mpe_netlist::{bench_format, generate, Circuit, Iscas85};

use crate::error::AppError;

/// FNV-1a over the inline netlist text: cheap, dependency-free, and a
/// 64-bit digest is plenty for a cache that also keys on the subject
/// name (a collision costs a wrong cache hit on attacker-supplied text;
/// this daemon trusts its submitters — see DESIGN §12).
fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in text.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// How a job names its circuit, normalised to a cache key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CircuitRef {
    /// A synthetic ISCAS85 stand-in: `generate(profile, gen_seed)`.
    Generated {
        /// Which profile.
        profile: Iscas85,
        /// Generator seed (the CLI's `--gen-seed`, default 7).
        gen_seed: u64,
    },
    /// Inline `.bench` netlist text.
    Bench {
        /// Subject name used in the report (the CLI uses the file stem).
        name: String,
        /// Content digest of the netlist text.
        digest: u64,
    },
}

/// A concurrency-safe, grow-only map from [`CircuitRef`] to the packed
/// circuit, with hit/miss accounting for `/stats`.
///
/// Construction happens *outside* the lock — two racing misses may both
/// build, and the loser's work is discarded in favour of the first
/// insert, keeping every job for one key on the same `Arc`.
#[derive(Debug, Default)]
pub struct CircuitCache {
    entries: Mutex<HashMap<CircuitRef, Arc<Circuit>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CircuitCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> CircuitCache {
        CircuitCache::default()
    }

    /// Resolves a generated circuit through the cache.
    ///
    /// # Errors
    ///
    /// Generation failures surface as runtime-class [`AppError`]s.
    pub fn generated(&self, profile: Iscas85, gen_seed: u64) -> Result<Arc<Circuit>, AppError> {
        let key = CircuitRef::Generated { profile, gen_seed };
        self.get_or_build(key, || {
            generate(profile, gen_seed)
                .map_err(|e| AppError::runtime(format!("cannot generate circuit: {e}")))
        })
    }

    /// Resolves an inline `.bench` netlist through the cache.
    ///
    /// # Errors
    ///
    /// Parse failures surface as usage-class [`AppError`]s (the caller
    /// supplied the text).
    pub fn bench(&self, name: &str, text: &str) -> Result<Arc<Circuit>, AppError> {
        let key = CircuitRef::Bench {
            name: name.to_string(),
            digest: fnv1a(text),
        };
        self.get_or_build(key, || {
            bench_format::parse(text, name)
                .map_err(|e| AppError::usage(format!("invalid bench netlist: {e}")))
        })
    }

    fn get_or_build(
        &self,
        key: CircuitRef,
        build: impl FnOnce() -> Result<Circuit, AppError>,
    ) -> Result<Arc<Circuit>, AppError> {
        if let Some(hit) = self
            .entries
            .lock()
            .expect("circuit cache poisoned")
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(build()?);
        let mut entries = self.entries.lock().expect("circuit cache poisoned");
        Ok(Arc::clone(entries.entry(key).or_insert_with(|| built)))
    }

    /// `(entries, hits, misses)` for the `/stats` endpoint.
    #[must_use]
    pub fn stats(&self) -> (usize, u64, u64) {
        let entries = self.entries.lock().expect("circuit cache poisoned").len();
        (
            entries,
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_circuits_are_shared_not_rebuilt() {
        let cache = CircuitCache::new();
        let a = cache.generated(Iscas85::C432, 7).expect("generates");
        let b = cache.generated(Iscas85::C432, 7).expect("second lookup");
        assert!(Arc::ptr_eq(&a, &b), "same key must share one circuit");
        let c = cache.generated(Iscas85::C432, 8).expect("other seed");
        assert!(!Arc::ptr_eq(&a, &c), "different seed is a different entry");
        let (entries, hits, misses) = cache.stats();
        assert_eq!((entries, hits, misses), (2, 1, 2));
    }

    #[test]
    fn bench_text_is_keyed_by_content_and_name() {
        let text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n";
        let cache = CircuitCache::new();
        let a = cache.bench("tiny", text).expect("parses");
        let b = cache.bench("tiny", text).expect("hit");
        assert!(Arc::ptr_eq(&a, &b));
        // The same text under a different subject name is a distinct
        // entry: the name is part of the report.
        let c = cache.bench("other", text).expect("other name");
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.name(), "other");
        // Parse errors are usage-class and are not cached.
        let err = cache.bench("bad", "y = FROB(a)\n").expect_err("rejects");
        assert_eq!(err.kind.http_status().0, 400);
    }
}
