//! A deliberately small HTTP/1.1 layer for the job API.
//!
//! `std::net` only — no external dependencies — and only the subset the
//! API needs: `GET`/`POST`, a `Content-Length`-framed body, and two
//! response shapes (a framed JSON document, or an unframed NDJSON stream
//! that ends when the connection closes). Every response carries
//! `Connection: close`; keep-alive buys nothing for a job API whose
//! requests are seconds apart and costs a state machine.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use crate::error::AppError;

/// Largest accepted request body (inline `.bench` netlists are the big
/// case; the largest ISCAS85 profile is well under 1 MiB of text).
const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;
/// Largest accepted request line + headers.
const MAX_HEAD_BYTES: usize = 64 * 1024;

/// One parsed request: method, path and (possibly empty) body.
#[derive(Debug)]
pub struct Request {
    /// `GET` / `POST` (anything else is rejected at parse time).
    pub method: String,
    /// The request target, query string stripped.
    pub path: String,
    /// The body, UTF-8 decoded.
    pub body: String,
}

/// Reads and parses one request from the stream.
///
/// # Errors
///
/// Any framing violation — unknown method, oversized head or body,
/// non-UTF-8 body, missing `Content-Length` on a non-empty body — comes
/// back as a usage-class [`AppError`], which the caller renders as a
/// `400` with the standard error body.
pub fn read_request(stream: &mut BufReader<TcpStream>) -> Result<Request, AppError> {
    let mut line = String::new();
    read_head_line(stream, &mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if !matches!(method.as_str(), "GET" | "POST") {
        return Err(AppError::usage(format!(
            "unsupported method `{method}` (supported: GET, POST)"
        )));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(AppError::usage(format!("unsupported protocol `{version}`")));
    }
    let mut content_length = 0usize;
    let mut head_bytes = line.len();
    loop {
        line.clear();
        read_head_line(stream, &mut line)?;
        head_bytes += line.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(AppError::usage("request headers too large"));
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| AppError::usage("invalid Content-Length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(AppError::usage(format!(
            "request body larger than {MAX_BODY_BYTES} bytes"
        )));
    }
    let mut body = vec![0u8; content_length];
    stream
        .read_exact(&mut body)
        .map_err(|e| AppError::usage(format!("truncated request body: {e}")))?;
    let body = String::from_utf8(body).map_err(|_| AppError::usage("request body is not UTF-8"))?;
    let path = target
        .split_once('?')
        .map_or(target.as_str(), |(p, _)| p)
        .to_string();
    Ok(Request { method, path, body })
}

fn read_head_line(stream: &mut BufReader<TcpStream>, line: &mut String) -> Result<(), AppError> {
    match stream.read_line(line) {
        Ok(0) => Err(AppError::usage("connection closed mid-request")),
        Ok(_) => Ok(()),
        Err(e) => Err(AppError::usage(format!("unreadable request: {e}"))),
    }
}

/// Writes a framed response: status line, standard headers, JSON body.
pub fn write_response(stream: &mut TcpStream, status: u16, reason: &str, body: &str) {
    // A client that hung up mid-exchange is its own problem; the daemon
    // just moves on, so write errors are deliberately discarded.
    let _ = write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\n\
         Content-Type: application/json\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

/// Writes an error response with the same structured body the CLI prints
/// on stderr (`{"error":{"kind":...,"message":...}}`).
pub fn write_error(stream: &mut TcpStream, err: &AppError) {
    let (status, reason) = err.kind.http_status();
    write_response(stream, status, reason, &err.to_json_body());
}

/// Starts an unframed NDJSON stream: status line and headers only; the
/// caller writes newline-terminated JSON documents directly to the stream
/// and signals the end by closing the connection.
///
/// # Errors
///
/// Propagates the write error (the client hung up before the stream
/// started).
pub fn start_ndjson_stream(stream: &mut TcpStream) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\n\
         Content-Type: application/x-ndjson\r\n\
         Connection: close\r\n\r\n"
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn pipe() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port binds");
        let addr = listener.local_addr().expect("bound address known");
        let client = TcpStream::connect(addr).expect("loopback connects");
        let (server, _) = listener.accept().expect("accepts");
        (client, server)
    }

    #[test]
    fn parses_a_post_with_body() {
        let (mut client, server) = pipe();
        client
            .write_all(b"POST /jobs?x=1 HTTP/1.1\r\nHost: x\r\ncontent-length: 4\r\n\r\n{\"a\"")
            .expect("request writes");
        let req = read_request(&mut BufReader::new(server)).expect("well-formed request parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.body, "{\"a\"");
    }

    #[test]
    fn rejects_unknown_methods_and_truncated_bodies() {
        let (mut client, server) = pipe();
        client
            .write_all(b"DELETE /jobs HTTP/1.1\r\n\r\n")
            .expect("request writes");
        let err = read_request(&mut BufReader::new(server)).expect_err("DELETE rejected");
        assert!(err.to_string().contains("DELETE"));

        let (mut client, server) = pipe();
        client
            .write_all(b"POST /jobs HTTP/1.1\r\nContent-Length: 10\r\n\r\nab")
            .expect("request writes");
        drop(client);
        assert!(read_request(&mut BufReader::new(server)).is_err());
    }

    #[test]
    fn framed_response_roundtrips() {
        let (client, mut server) = pipe();
        write_response(&mut server, 429, "Too Many Requests", "{\"x\":1}");
        drop(server);
        let mut text = String::new();
        BufReader::new(client)
            .read_to_string(&mut text)
            .expect("response reads");
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.ends_with("{\"x\":1}"));
    }
}
