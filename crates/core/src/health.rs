//! Run-health vocabulary: which estimator produced each number, how the
//! run ended, and what the engine had to survive to get there.
//!
//! The paper's Figure 4 loop assumes every simulation succeeds and every
//! MLE converges. In deployment neither holds: power oracles fail
//! transiently, return garbage (NaN, ±∞, negative "power"), and
//! pathological circuits produce near-degenerate sample maxima on which
//! the reversed-Weibull likelihood has no interior maximum. The types in
//! this module make those events *observable* instead of fatal: every
//! [`MaxPowerEstimate`](crate::MaxPowerEstimate) carries a [`RunStatus`]
//! and a [`RunHealth`] so callers can distinguish a pristine converged run
//! from one that limped home on fallback estimators.

use serde::{Deserialize, Serialize};

use crate::supervise::StopReason;

/// Which estimator produced a hyper-sample estimate.
///
/// The engine degrades along a fixed ladder, from the paper's estimator to
/// progressively weaker but more robust ones:
///
/// 1. [`Mle`](EstimatorKind::Mle) — profile maximum likelihood on the
///    reversed Weibull (the paper's §3.2; unbiased in the limit, needs a
///    non-degenerate spread of sample maxima);
/// 2. [`Pot`](EstimatorKind::Pot) — peaks-over-threshold GPD endpoint over
///    the raw unit draws (robust to tied maxima, still tail-parametric);
/// 3. [`Quantile`](EstimatorKind::Quantile) — the distribution-free
///    empirical quantile of the raw draws (always defined; no
///    extrapolation beyond the observed maximum).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EstimatorKind {
    /// Reversed-Weibull profile MLE (the paper's estimator).
    Mle,
    /// Peaks-over-threshold GPD endpoint fallback.
    Pot,
    /// Empirical-quantile fallback (last rung of the ladder).
    Quantile,
}

impl EstimatorKind {
    /// Short lowercase label for reports and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            EstimatorKind::Mle => "mle",
            EstimatorKind::Pot => "pot",
            EstimatorKind::Quantile => "quantile",
        }
    }
}

/// Why a hyper-sample landed on its estimator rung — the typed half of the
/// per-hyper-sample audit trail (report schema v7).
///
/// [`Converged`](FitReasonCode::Converged) is the happy path; every other
/// code names the *final* MLE failure that pushed the hyper-sample down
/// the fallback ladder (or cut the retry loop short).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FitReasonCode {
    /// The reversed-Weibull profile MLE converged.
    Converged,
    /// The sample maxima were (near-)degenerate: zero spread, so the
    /// likelihood has no interior maximum.
    DegenerateMaxima,
    /// The degeneracy pre-check proved the source constant — retrying
    /// could never help.
    ConstantSource,
    /// The likelihood optimizer failed to converge.
    NoConvergence,
    /// Too few usable observations reached the fit.
    InsufficientData,
    /// The diagnostics for this hyper-sample were not recorded (resumed
    /// from a checkpoint written before schema v7).
    Unknown,
}

impl FitReasonCode {
    /// Short snake_case label for reports, traces and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            FitReasonCode::Converged => "converged",
            FitReasonCode::DegenerateMaxima => "degenerate_maxima",
            FitReasonCode::ConstantSource => "constant_source",
            FitReasonCode::NoConvergence => "no_convergence",
            FitReasonCode::InsufficientData => "insufficient_data",
            FitReasonCode::Unknown => "unknown",
        }
    }
}

/// Per-hyper-sample estimator audit record: which rung produced the
/// estimate, why, and how well the fit matched the batch. Computed for
/// every hyper-sample regardless of telemetry state (it feeds the report
/// and checkpoint, which must be bit-identical with telemetry on or off).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitDiagnostics {
    /// The estimator rung that produced this hyper-sample's estimate.
    pub rung: EstimatorKind,
    /// Why the hyper-sample landed on that rung.
    pub reason: FitReasonCode,
    /// Mean log-likelihood at the fit optimum (`None` for the
    /// quantile rung, which fits nothing).
    pub log_likelihood: Option<f64>,
    /// Kolmogorov–Smirnov distance of the batch maxima against the fitted
    /// reversed Weibull (`None` when there is no Weibull fit).
    pub ks_distance: Option<f64>,
    /// Fitted tail shape: Weibull `α̂` for the MLE rung (Smith regularity
    /// needs `α̂ > 2`), GPD `ξ̂` for the POT rung.
    pub tail_shape: Option<f64>,
}

impl FitDiagnostics {
    /// The placeholder record for hyper-samples whose diagnostics were
    /// never captured (pre-v7 checkpoints).
    pub fn unknown(rung: EstimatorKind) -> Self {
        FitDiagnostics {
            rung,
            reason: FitReasonCode::Unknown,
            log_likelihood: None,
            ks_distance: None,
            tail_shape: None,
        }
    }

    /// Whether this record describes an MLE fit violating Smith's
    /// `α > 2` regularity condition (CIs lose their asymptotic
    /// justification there).
    pub fn is_irregular_mle(&self) -> bool {
        self.rung == EstimatorKind::Mle && self.tail_shape.is_some_and(|a| a <= 2.0)
    }
}

/// How an estimation run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunStatus {
    /// The stopping rule fired: the confidence interval met the requested
    /// relative (or, under the zero-mean guard, absolute) error, and every
    /// hyper-sample came from the primary MLE estimator.
    Converged,
    /// The hyper-sample cap was reached before the stopping rule fired.
    /// The estimate is the best available partial result; its achieved
    /// error is in [`MaxPowerEstimate::relative_error`](crate::MaxPowerEstimate).
    BudgetExhausted,
    /// At least one hyper-sample came from a fallback estimator. The
    /// stopping rule may still have fired — check
    /// [`RunHealth`] for how much of the run degraded.
    Degraded {
        /// The *weakest* estimator that contributed (the deepest rung of
        /// the ladder reached anywhere in the run).
        fallback: EstimatorKind,
    },
    /// Run supervision stopped the run before the stopping rule fired: an
    /// operator cancellation, an expired wall-clock deadline, or a spent
    /// hyper-sample budget. The estimate is the valid partial result over
    /// the committed prefix; resuming from its checkpoint continues the
    /// run bit-identically. Schema v6.
    Interrupted {
        /// What stopped the run.
        reason: StopReason,
    },
}

impl RunStatus {
    /// Whether the stopping rule's error target was met (regardless of
    /// which estimators contributed).
    pub fn met_target(self) -> bool {
        !matches!(
            self,
            RunStatus::BudgetExhausted | RunStatus::Interrupted { .. }
        )
    }
}

/// Fault/robustness counters for a single hyper-sample.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HyperHealth {
    /// Readings the source *returned* but the policy discarded
    /// (NaN, ±∞, negative power).
    pub samples_discarded: usize,
    /// Source calls that returned an error and were survived
    /// (skipped or retried per the [`SamplePolicy`](crate::SamplePolicy)).
    pub source_errors: usize,
    /// Immediate redraws performed under
    /// [`SamplePolicy::Retry`](crate::SamplePolicy::Retry).
    pub sample_retries: usize,
    /// Fresh-draw retries of a degenerate MLE.
    pub mle_retries: usize,
    /// Whether the degeneracy pre-check (all sample maxima identical, or
    /// the source provably constant) cut the retry loop short.
    pub degenerate_bailout: bool,
}

/// Aggregated fault/robustness counters for a whole estimation run,
/// attached to every [`MaxPowerEstimate`](crate::MaxPowerEstimate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunHealth {
    /// Total readings discarded across all hyper-samples.
    pub samples_discarded: usize,
    /// Total source errors survived.
    pub source_errors: usize,
    /// Total immediate sample retries.
    pub sample_retries: usize,
    /// Total degenerate-MLE retries.
    pub mle_retries: usize,
    /// Hyper-samples whose retry loop was cut short by the degeneracy
    /// pre-check.
    pub degenerate_bailouts: usize,
    /// Hyper-samples estimated by the POT fallback.
    pub pot_fallbacks: usize,
    /// Hyper-samples estimated by the empirical-quantile fallback.
    pub quantile_fallbacks: usize,
    /// Whether the stopping rule ever switched to the absolute-width
    /// criterion because the running mean was indistinguishable from zero
    /// (the relative half-width is undefined there).
    pub zero_mean_guard: bool,
    /// Parallel worker panics that were recovered by re-deriving the
    /// panicked hyper-sample on a healthy worker (schema v6; absent in
    /// older records and defaults to 0).
    #[serde(default)]
    pub worker_restarts: usize,
    /// Parallel workers flagged by the stall watchdog as having gone
    /// longer than the configured heartbeat timeout without progress
    /// (schema v6). Timing-dependent observability — never affects the
    /// estimate.
    #[serde(default)]
    pub worker_stalls: usize,
    /// MLE fits whose fitted shape violated Smith's `α > 2` regularity
    /// condition (schema v7). Diagnostic only: the estimate is still the
    /// paper's MLE and the run is not considered faulty — see
    /// [`is_clean`](Self::is_clean).
    #[serde(default)]
    pub irregular_fits: usize,
}

impl RunHealth {
    /// Folds one hyper-sample's health (and the estimator that produced
    /// it) into the run-level aggregate.
    pub fn absorb(&mut self, hyper: &HyperHealth, estimator: EstimatorKind) {
        self.samples_discarded += hyper.samples_discarded;
        self.source_errors += hyper.source_errors;
        self.sample_retries += hyper.sample_retries;
        self.mle_retries += hyper.mle_retries;
        if hyper.degenerate_bailout {
            self.degenerate_bailouts += 1;
        }
        match estimator {
            EstimatorKind::Mle => {}
            EstimatorKind::Pot => self.pot_fallbacks += 1,
            EstimatorKind::Quantile => self.quantile_fallbacks += 1,
        }
    }

    /// Whether the run saw no faults, no fallbacks and no guard switches —
    /// i.e. it behaved exactly like the paper's idealized procedure.
    /// Irregular (`α ≤ 2`) MLE fits are excluded: they are a property of
    /// the circuit's power tail, not of anything going wrong in the run.
    pub fn is_clean(&self) -> bool {
        RunHealth {
            irregular_fits: 0,
            ..*self
        } == RunHealth::default()
    }

    /// The weakest (deepest-ladder) estimator that contributed, if any
    /// fallback was taken.
    pub fn deepest_fallback(&self) -> Option<EstimatorKind> {
        if self.quantile_fallbacks > 0 {
            Some(EstimatorKind::Quantile)
        } else if self.pot_fallbacks > 0 {
            Some(EstimatorKind::Pot)
        } else {
            None
        }
    }

    /// The [`RunStatus`] implied by this health record and whether the
    /// stopping rule fired. Missing the error target outranks degradation:
    /// a capped run reports [`RunStatus::BudgetExhausted`] even if
    /// fallbacks also fired (the fallback counts stay visible here).
    pub fn status(&self, met_target: bool) -> RunStatus {
        if !met_target {
            return RunStatus::BudgetExhausted;
        }
        match self.deepest_fallback() {
            Some(fallback) => RunStatus::Degraded { fallback },
            None => RunStatus::Converged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_health_is_clean() {
        let h = RunHealth::default();
        assert!(h.is_clean());
        assert_eq!(h.deepest_fallback(), None);
        assert_eq!(h.status(true), RunStatus::Converged);
        assert_eq!(h.status(false), RunStatus::BudgetExhausted);
    }

    #[test]
    fn absorb_accumulates_and_ranks_fallbacks() {
        let mut run = RunHealth::default();
        let hyper = HyperHealth {
            samples_discarded: 3,
            source_errors: 2,
            sample_retries: 1,
            mle_retries: 4,
            degenerate_bailout: true,
        };
        run.absorb(&hyper, EstimatorKind::Mle);
        run.absorb(&hyper, EstimatorKind::Pot);
        run.absorb(&hyper, EstimatorKind::Quantile);
        assert_eq!(run.samples_discarded, 9);
        assert_eq!(run.source_errors, 6);
        assert_eq!(run.sample_retries, 3);
        assert_eq!(run.mle_retries, 12);
        assert_eq!(run.degenerate_bailouts, 3);
        assert_eq!(run.pot_fallbacks, 1);
        assert_eq!(run.quantile_fallbacks, 1);
        assert!(!run.is_clean());
        // Quantile outranks POT as the deeper degradation.
        assert_eq!(run.deepest_fallback(), Some(EstimatorKind::Quantile));
        assert_eq!(
            run.status(true),
            RunStatus::Degraded {
                fallback: EstimatorKind::Quantile
            }
        );
        // A capped run is BudgetExhausted even when fallbacks fired.
        assert_eq!(run.status(false), RunStatus::BudgetExhausted);
    }

    #[test]
    fn empty_run_health_stays_converged_regardless_of_absorb_count() {
        // An "empty" run (no hyper-samples absorbed) and a run of clean
        // MLE hyper-samples are indistinguishable: both clean, no
        // fallback, converged when the target was met.
        let mut run = RunHealth::default();
        for _ in 0..5 {
            run.absorb(&HyperHealth::default(), EstimatorKind::Mle);
        }
        assert!(run.is_clean());
        assert_eq!(run.deepest_fallback(), None);
        assert_eq!(run.status(true), RunStatus::Converged);
    }

    #[test]
    fn all_degraded_run_reports_deepest_rung_only() {
        // Every hyper-sample fell back to POT; no quantile rung reached.
        let mut run = RunHealth::default();
        for _ in 0..4 {
            run.absorb(&HyperHealth::default(), EstimatorKind::Pot);
        }
        assert_eq!(run.pot_fallbacks, 4);
        assert_eq!(run.quantile_fallbacks, 0);
        assert_eq!(run.deepest_fallback(), Some(EstimatorKind::Pot));
        assert_eq!(
            run.status(true),
            RunStatus::Degraded {
                fallback: EstimatorKind::Pot
            }
        );
        // Fallbacks alone don't make the run unhealthy-clean: the ledger
        // records them, so the run is not "clean".
        assert!(!run.is_clean());
    }

    #[test]
    fn mixed_estimator_kinds_rank_quantile_over_pot_in_any_order() {
        // Deepest-rung ranking must not depend on absorb order.
        let mut a = RunHealth::default();
        a.absorb(&HyperHealth::default(), EstimatorKind::Quantile);
        a.absorb(&HyperHealth::default(), EstimatorKind::Pot);
        a.absorb(&HyperHealth::default(), EstimatorKind::Mle);
        let mut b = RunHealth::default();
        b.absorb(&HyperHealth::default(), EstimatorKind::Mle);
        b.absorb(&HyperHealth::default(), EstimatorKind::Pot);
        b.absorb(&HyperHealth::default(), EstimatorKind::Quantile);
        assert_eq!(a, b);
        assert_eq!(a.deepest_fallback(), Some(EstimatorKind::Quantile));
        assert_eq!(b.deepest_fallback(), Some(EstimatorKind::Quantile));
    }

    #[test]
    fn faulty_but_mle_only_run_is_dirty_yet_not_degraded() {
        // Survived faults mark the run unclean without implying a
        // fallback: status stays Converged when every estimate was MLE.
        let mut run = RunHealth::default();
        run.absorb(
            &HyperHealth {
                source_errors: 7,
                samples_discarded: 2,
                ..HyperHealth::default()
            },
            EstimatorKind::Mle,
        );
        assert!(!run.is_clean());
        assert_eq!(run.deepest_fallback(), None);
        assert_eq!(run.status(true), RunStatus::Converged);
    }

    #[test]
    fn status_met_target() {
        assert!(RunStatus::Converged.met_target());
        assert!(!RunStatus::BudgetExhausted.met_target());
        assert!(RunStatus::Degraded {
            fallback: EstimatorKind::Pot
        }
        .met_target());
        assert!(!RunStatus::Interrupted {
            reason: StopReason::Cancelled
        }
        .met_target());
    }

    #[test]
    fn worker_incidents_mark_health_dirty_without_degrading_status() {
        // A recovered panic or a flagged stall dirties the ledger but does
        // not imply a fallback estimator: status stays Converged.
        let run = RunHealth {
            worker_restarts: 1,
            ..RunHealth::default()
        };
        assert!(!run.is_clean());
        assert_eq!(run.deepest_fallback(), None);
        assert_eq!(run.status(true), RunStatus::Converged);
        let run = RunHealth {
            worker_stalls: 2,
            ..RunHealth::default()
        };
        assert!(!run.is_clean());
        assert_eq!(run.status(true), RunStatus::Converged);
    }

    #[test]
    fn serde_roundtrip() {
        let status = RunStatus::Degraded {
            fallback: EstimatorKind::Quantile,
        };
        let json = serde_json::to_string(&status).unwrap();
        let back: RunStatus = serde_json::from_str(&json).unwrap();
        assert_eq!(status, back);
        let health = RunHealth {
            samples_discarded: 1,
            zero_mean_guard: true,
            ..RunHealth::default()
        };
        let json = serde_json::to_string(&health).unwrap();
        let back: RunHealth = serde_json::from_str(&json).unwrap();
        assert_eq!(health, back);
    }

    #[test]
    fn labels() {
        assert_eq!(EstimatorKind::Mle.label(), "mle");
        assert_eq!(EstimatorKind::Pot.label(), "pot");
        assert_eq!(EstimatorKind::Quantile.label(), "quantile");
        assert_eq!(FitReasonCode::Converged.label(), "converged");
        assert_eq!(FitReasonCode::DegenerateMaxima.label(), "degenerate_maxima");
        assert_eq!(FitReasonCode::Unknown.label(), "unknown");
    }

    #[test]
    fn irregular_fits_stay_clean_but_are_counted() {
        // An α ≤ 2 fit is a property of the circuit, not a fault: the run
        // is still "clean", but the count survives serialization.
        let run = RunHealth {
            irregular_fits: 3,
            ..RunHealth::default()
        };
        assert!(run.is_clean());
        assert_eq!(run.deepest_fallback(), None);
        assert_eq!(run.status(true), RunStatus::Converged);
        let dirty = RunHealth {
            irregular_fits: 3,
            mle_retries: 1,
            ..RunHealth::default()
        };
        assert!(!dirty.is_clean());
    }

    #[test]
    fn fit_diagnostics_regularity_check() {
        let regular = FitDiagnostics {
            rung: EstimatorKind::Mle,
            reason: FitReasonCode::Converged,
            log_likelihood: Some(-1.0),
            ks_distance: Some(0.2),
            tail_shape: Some(3.5),
        };
        assert!(!regular.is_irregular_mle());
        let irregular = FitDiagnostics {
            tail_shape: Some(1.5),
            ..regular
        };
        assert!(irregular.is_irregular_mle());
        // A POT rung with small ξ̂ is not an *MLE* regularity violation.
        let pot = FitDiagnostics {
            rung: EstimatorKind::Pot,
            reason: FitReasonCode::NoConvergence,
            tail_shape: Some(-0.4),
            ..regular
        };
        assert!(!pot.is_irregular_mle());
        let unknown = FitDiagnostics::unknown(EstimatorKind::Mle);
        assert_eq!(unknown.reason, FitReasonCode::Unknown);
        assert!(!unknown.is_irregular_mle());
    }
}
