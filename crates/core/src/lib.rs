//! # maxpower — statistical maximum power estimation
//!
//! A Rust implementation of
//! *"Maximum Power Estimation Using the Limiting Distributions of Extreme
//! Order Statistics"* (Qinru Qiu, Qing Wu, Massoud Pedram — DAC 1998),
//! together with every substrate it needs: a gate-level power simulator,
//! circuit generators, extreme-value distributions and a non-regular
//! Weibull MLE.
//!
//! ## The method in one paragraph
//!
//! Cycle power for a random input vector pair is a bounded random variable,
//! so the maxima of power samples follow (asymptotically) a **reversed
//! Weibull** law whose location parameter `μ` *is* the maximum power. Draw
//! `m = 10` samples of `n = 30` simulated vector pairs, fit `(α, β, μ)` by
//! maximum likelihood → one **hyper-sample** estimate (300 simulations).
//! Hyper-samples are approximately normal around the true maximum, so a
//! Student-t interval over `k` of them gives a confidence interval; keep
//! adding hyper-samples until the interval half-width falls below the
//! requested relative error `ε` at confidence `l`. Typical cost: ~2500
//! vector pairs for ε = 5 %, l = 90 % — versus tens of thousands for naive
//! random search.
//!
//! ## Quickstart
//!
//! ```
//! use mpe_netlist::{generate, Iscas85};
//! use mpe_sim::{DelayModel, PowerConfig};
//! use mpe_vectors::PairGenerator;
//! use maxpower::{EstimationConfig, EstimatorBuilder, RunOptions, SimulatorSource};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. The circuit under analysis (here: a generated ISCAS85 stand-in).
//! let circuit = generate(Iscas85::C432, 7)?;
//!
//! // 2. A power source: fresh random vector pairs, simulated on demand.
//! let source = SimulatorSource::new(
//!     &circuit,
//!     PairGenerator::Uniform,
//!     DelayModel::Unit,
//!     PowerConfig::default(),
//! );
//!
//! // 3. Estimate to 5% error at 90% confidence (the paper's setting).
//! //    Like the paper's experiments (§3.4), we target the maximum of a
//! //    finite population of vector pairs; the estimator then reports the
//! //    (1 − 1/|V|) quantile of the fitted Weibull, which is both what the
//! //    ground truth means and substantially more stable than the raw
//! //    endpoint estimate.
//! let config = EstimationConfig {
//!     finite_population: Some(160_000),
//!     ..EstimationConfig::default()
//! };
//! let session = EstimatorBuilder::new(config).build();
//! let estimate = session.run(&source, RunOptions::default().seeded(42))?;
//!
//! println!(
//!     "max power ≈ {:.3} mW ± {:.1}% ({} vector pairs simulated)",
//!     estimate.estimate_mw,
//!     100.0 * estimate.relative_error,
//!     estimate.units_used
//! );
//! # Ok(())
//! # }
//! ```
//!
//! Hyper-samples are i.i.d., so the session parallelizes them: add
//! `.workers(NonZeroUsize::new(4).unwrap())` to the options and the same
//! seed yields a *bit-identical* estimate, checkpoint sequence and
//! convergence history — only faster. See the `session` module docs.

pub mod average;
pub mod checkpoint;
pub mod config;
pub mod delay;
pub(crate) mod engine;
pub mod error;
pub mod estimator;
pub mod fault;
pub mod health;
pub mod hyper;
pub mod quantile_baseline;
pub mod report;
pub mod serve;
pub mod session;
pub mod source;
pub mod srs;
pub mod supervise;
pub mod sweep;

pub use average::{estimate_average_power, AveragePowerEstimate};
pub use checkpoint::{config_fingerprint, Checkpoint, CheckpointHistoryEntry, CHECKPOINT_VERSION};
pub use config::{BiasCorrection, EstimationConfig, FallbackPolicy, SamplePolicy};
pub use delay::DelaySource;
pub use error::{AppError, FailureKind, MaxPowerError};
pub use estimator::{EstimateHistoryEntry, MaxPowerEstimate};
pub use fault::{FaultConfig, FaultInjectingSource, FaultStats};
pub use health::{EstimatorKind, HyperHealth, RunHealth, RunStatus};
pub use hyper::{generate_hyper_sample, HyperSample, HyperSampleContext};
pub use quantile_baseline::{quantile_baseline_estimate, QuantileEstimate};
pub use report::{CounterValue, EstimateReport, JobProvenance, PhaseTiming, TelemetrySummary};
pub use session::{EstimatorBuilder, RunOptions, Session};

// Re-exported so downstream users can drive telemetry without naming the
// `mpe-telemetry` crate directly.
pub use mpe_telemetry as telemetry;
pub use source::{
    FnSource, LaneStats, PopulationSource, PowerSource, PowerSourceFactory, SimulatorSource,
};
pub use srs::{srs_max_estimate, srs_theoretical_units, SrsEstimate};
pub use supervise::{CancelToken, RunBudget, StopReason};
pub use sweep::{sweep_activity, SweepPoint};
