//! Run supervision: cooperative cancellation, run budgets, and the stop
//! vocabulary shared by the execution engine, the CLI and reports.
//!
//! A long gate-level estimation is an unattended batch job: it must be
//! stoppable (Ctrl-C, orchestrator SIGTERM), bounded (wall-clock deadline,
//! hyper-sample budget) and observable when it wedges. This module holds
//! the pieces the rest of the crate threads through
//! [`RunOptions`](crate::RunOptions):
//!
//! * [`CancelToken`] — a cheaply clonable, async-signal-safe stop flag.
//!   Cancellation is *cooperative*: the engine checks it between
//!   hyper-samples and between the individual samples inside one, finishes
//!   the committed prefix, saves a final checkpoint, and returns a valid
//!   partial estimate tagged
//!   [`RunStatus::Interrupted`](crate::RunStatus::Interrupted).
//! * [`RunBudget`] — wall-clock deadline, committed-hyper-sample budget,
//!   and the stall watchdog's per-worker heartbeat timeout.
//! * [`StopReason`] — why a supervised run stopped early; carried in the
//!   report (`status: Interrupted { reason }`) so downstream tooling can
//!   tell an operator's Ctrl-C from an expired deadline.
//!
//! Because a stop only ever truncates the committed prefix of the
//! deterministic hyper-sample sequence, resuming an interrupted run from
//! its checkpoint reproduces the uninterrupted run **bit-identically** —
//! the same guarantee the parallel engine gives for worker counts.

use std::any::Any;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

/// Why a supervised run stopped before its statistical stopping rule (or
/// the hyper-sample cap) fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// [`CancelToken::cancel`] was called — an operator interrupt
    /// (SIGINT/SIGTERM in the CLI) or a programmatic stop.
    Cancelled,
    /// The [`RunBudget::deadline`] wall-clock budget expired.
    DeadlineExceeded,
    /// The [`RunBudget::max_hyper_samples`] budget for this run segment
    /// was spent.
    HyperSampleBudget,
}

impl StopReason {
    /// Short lowercase label for reports and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            StopReason::Cancelled => "cancelled",
            StopReason::DeadlineExceeded => "deadline exceeded",
            StopReason::HyperSampleBudget => "hyper-sample budget spent",
        }
    }
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A cooperative cancellation handle: clone it freely, trip it once.
///
/// The flag is a single atomic, so [`CancelToken::cancel`] is
/// async-signal-safe — the `mpe` CLI calls it straight from its
/// SIGINT/SIGTERM handler. Once cancelled a token stays cancelled; create
/// a fresh token per run if runs must be cancellable independently.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests a graceful stop. Safe to call from any thread or from a
    /// signal handler; idempotent.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether a stop has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

/// Resource budget for one run segment. The default is unlimited — every
/// field `None` — so supervision costs nothing unless opted into.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunBudget {
    /// Wall-clock budget, measured from the moment the run starts. When it
    /// expires the run stops gracefully with
    /// [`StopReason::DeadlineExceeded`]; a hyper-sample already in flight
    /// is completed (and committed) first.
    pub deadline: Option<Duration>,
    /// Hyper-samples this run segment may *commit* (resumed work does not
    /// count against it, so "run 50 more, then checkpoint" composes).
    /// Distinct from
    /// [`EstimationConfig::max_hyper_samples`](crate::EstimationConfig::max_hyper_samples),
    /// which is a statistical cap on the whole estimate and reports
    /// [`RunStatus::BudgetExhausted`](crate::RunStatus::BudgetExhausted).
    pub max_hyper_samples: Option<usize>,
    /// Stall watchdog: a parallel worker whose heartbeat is older than
    /// this is reported in
    /// [`RunHealth::worker_stalls`](crate::RunHealth::worker_stalls) (and
    /// on the telemetry bus). Detection is timing-dependent by nature, so
    /// enabling the watchdog makes the *health ledger* — never the
    /// estimate — execution-dependent. Ignored by single-worker runs.
    pub stall_timeout: Option<Duration>,
}

impl RunBudget {
    /// An unlimited budget (the default).
    pub fn none() -> Self {
        RunBudget::default()
    }

    /// Sets the wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the committed-hyper-sample budget for this run segment.
    #[must_use]
    pub fn with_max_hyper_samples(mut self, n: usize) -> Self {
        self.max_hyper_samples = Some(n);
        self
    }

    /// Sets the parallel stall watchdog's heartbeat timeout.
    #[must_use]
    pub fn with_stall_timeout(mut self, timeout: Duration) -> Self {
        self.stall_timeout = Some(timeout);
        self
    }

    /// Whether every budget dimension is unlimited.
    pub fn is_unlimited(&self) -> bool {
        *self == RunBudget::default()
    }
}

/// The supervision inputs a run carries: the caller's cancel token and
/// budget, bundled so engine signatures stay stable as supervision grows.
#[derive(Debug, Clone, Default)]
pub(crate) struct Supervision {
    pub(crate) cancel: Option<CancelToken>,
    pub(crate) budget: RunBudget,
}

/// Engine-side supervisor: evaluates the stop conditions against the live
/// run. One per run segment; the deadline clock starts at construction.
pub(crate) struct Supervisor {
    cancel: Option<CancelToken>,
    budget: RunBudget,
    started: Instant,
    committed_at_start: usize,
}

impl Supervisor {
    pub(crate) fn new(supervision: &Supervision, committed_at_start: usize) -> Self {
        Supervisor {
            cancel: supervision.cancel.clone(),
            budget: supervision.budget,
            started: Instant::now(),
            committed_at_start,
        }
    }

    /// Whether any stop condition can ever fire — when false the engine
    /// skips supervision entirely and runs exactly the unsupervised path.
    pub(crate) fn is_active(&self) -> bool {
        self.cancel.is_some()
            || self.budget.deadline.is_some()
            || self.budget.max_hyper_samples.is_some()
    }

    /// The configured stall watchdog timeout, if any.
    pub(crate) fn stall_timeout(&self) -> Option<Duration> {
        self.budget.stall_timeout
    }

    /// Evaluates the stop conditions given the currently committed
    /// hyper-sample count. Cancellation outranks the budgets (it is the
    /// explicit operator action).
    pub(crate) fn check(&self, committed: usize) -> Option<StopReason> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Some(StopReason::Cancelled);
            }
        }
        if let Some(deadline) = self.budget.deadline {
            if self.started.elapsed() >= deadline {
                return Some(StopReason::DeadlineExceeded);
            }
        }
        if let Some(max) = self.budget.max_hyper_samples {
            if committed.saturating_sub(self.committed_at_start) >= max {
                return Some(StopReason::HyperSampleBudget);
            }
        }
        None
    }
}

/// Renders a `catch_unwind` payload as text: the `&str`/`String` panic
/// messages the standard macros produce, or a placeholder for exotic
/// payloads.
pub(crate) fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_trips_once_and_clones_share_state() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled());
        token.cancel(); // idempotent
        assert!(clone.is_cancelled());
    }

    #[test]
    fn unlimited_budget_never_stops() {
        let supervision = Supervision::default();
        let supervisor = Supervisor::new(&supervision, 0);
        assert!(!supervisor.is_active());
        assert_eq!(supervisor.check(1_000_000), None);
    }

    #[test]
    fn cancellation_outranks_budgets() {
        let token = CancelToken::new();
        let supervision = Supervision {
            cancel: Some(token.clone()),
            budget: RunBudget::none().with_max_hyper_samples(0),
        };
        let supervisor = Supervisor::new(&supervision, 0);
        assert_eq!(supervisor.check(5), Some(StopReason::HyperSampleBudget));
        token.cancel();
        assert_eq!(supervisor.check(5), Some(StopReason::Cancelled));
    }

    #[test]
    fn hyper_sample_budget_counts_this_segment_only() {
        let supervision = Supervision {
            cancel: None,
            budget: RunBudget::none().with_max_hyper_samples(3),
        };
        // Resumed at 10 committed: the budget buys 3 *more*.
        let supervisor = Supervisor::new(&supervision, 10);
        assert_eq!(supervisor.check(10), None);
        assert_eq!(supervisor.check(12), None);
        assert_eq!(supervisor.check(13), Some(StopReason::HyperSampleBudget));
    }

    #[test]
    fn zero_deadline_fires_immediately() {
        let supervision = Supervision {
            cancel: None,
            budget: RunBudget::none().with_deadline(Duration::ZERO),
        };
        let supervisor = Supervisor::new(&supervision, 0);
        assert_eq!(supervisor.check(0), Some(StopReason::DeadlineExceeded));
    }

    #[test]
    fn budget_builder_and_labels() {
        let budget = RunBudget::none()
            .with_deadline(Duration::from_secs(60))
            .with_max_hyper_samples(50)
            .with_stall_timeout(Duration::from_secs(5));
        assert!(!budget.is_unlimited());
        assert!(RunBudget::none().is_unlimited());
        assert_eq!(StopReason::Cancelled.label(), "cancelled");
        assert_eq!(
            StopReason::DeadlineExceeded.to_string(),
            "deadline exceeded"
        );
        assert_eq!(
            StopReason::HyperSampleBudget.label(),
            "hyper-sample budget spent"
        );
    }

    #[test]
    fn panic_messages_render() {
        let payload: Box<dyn Any + Send> = Box::new("boom");
        assert_eq!(panic_message(payload.as_ref()), "boom");
        let payload: Box<dyn Any + Send> = Box::new(String::from("formatted boom"));
        assert_eq!(panic_message(payload.as_ref()), "formatted boom");
        let payload: Box<dyn Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(payload.as_ref()), "non-string panic payload");
    }
}
