//! Input-activity sweeps: maximum power as a function of the input
//! switching activity — the what-if curve a power-integrity engineer draws
//! before signing off a power grid.
//!
//! Each sweep point runs the full category-I.2 estimation (paper §I.2) at
//! one per-line activity; the resulting curve shows how the worst case
//! scales between a quiet bus (activity → 0) and a pathological one
//! (activity → 1).

use std::panic::{catch_unwind, AssertUnwindSafe};

use mpe_netlist::Circuit;
use mpe_sim::{DelayModel, PowerConfig};
use mpe_vectors::PairGenerator;

use crate::config::EstimationConfig;
use crate::error::MaxPowerError;
use crate::estimator::MaxPowerEstimate;
use crate::session::{EstimatorBuilder, RunOptions};
use crate::source::SimulatorSource;
use crate::supervise;

/// One point of an activity sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The per-line input switching activity of this point.
    pub activity: f64,
    /// The full estimate at this activity, or the reason it failed
    /// (individual non-convergence does not abort the sweep).
    pub result: Result<MaxPowerEstimate, MaxPowerError>,
}

/// Runs a maximum-power estimation at each activity in `activities`.
///
/// Deterministic per point: point `i` uses seed `seed + i`, so refining a
/// sweep (adding points) never changes existing ones.
///
/// # Errors
///
/// Returns [`MaxPowerError::InvalidConfig`] for an empty activity list or
/// activities outside `[0, 1]`; per-point failures are carried inside
/// [`SweepPoint::result`].
///
/// # Example
///
/// ```
/// use maxpower::{sweep::sweep_activity, EstimationConfig};
/// use mpe_netlist::{generate, Iscas85};
/// use mpe_sim::DelayModel;
///
/// # fn main() -> Result<(), maxpower::MaxPowerError> {
/// let circuit = generate(Iscas85::C432, 7).expect("profile generates");
/// let config = EstimationConfig {
///     relative_error: 0.10, // coarse curve, fast points
///     finite_population: Some(50_000),
///     max_hyper_samples: 400,
///     ..EstimationConfig::default()
/// };
/// let points = sweep_activity(&circuit, &[0.2, 0.8], DelayModel::Zero, &config, 1)?;
/// assert_eq!(points.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn sweep_activity(
    circuit: &Circuit,
    activities: &[f64],
    delay: DelayModel,
    config: &EstimationConfig,
    seed: u64,
) -> Result<Vec<SweepPoint>, MaxPowerError> {
    if activities.is_empty() {
        return Err(MaxPowerError::InvalidConfig {
            message: "activity sweep needs at least one point".to_string(),
        });
    }
    for &a in activities {
        if !(0.0..=1.0).contains(&a) || a.is_nan() {
            return Err(MaxPowerError::InvalidConfig {
                message: format!("activity {a} outside [0, 1]"),
            });
        }
    }
    let session = EstimatorBuilder::new(*config).build();
    let mut points = Vec::with_capacity(activities.len());
    for (i, &activity) in activities.iter().enumerate() {
        let source = SimulatorSource::new(
            circuit,
            PairGenerator::Activity { activity },
            delay,
            PowerConfig::default(),
        );
        let opts = RunOptions::default().seeded(seed.wrapping_add(i as u64));
        points.push(SweepPoint {
            activity,
            result: catch_point(activity, || {
                session
                    .run(&source, opts)
                    .and_then(MaxPowerEstimate::into_converged)
            }),
        });
    }
    Ok(points)
}

/// Runs one sweep point with panic containment: a point that panics (a
/// pathological circuit tripping an assertion deep in the simulator)
/// becomes a failed [`SweepPoint`] instead of unwinding through the sweep
/// and losing every other point's work. Points are independent runs, so
/// containment cannot affect any other point's result.
fn catch_point(
    activity: f64,
    run: impl FnOnce() -> Result<MaxPowerEstimate, MaxPowerError>,
) -> Result<MaxPowerEstimate, MaxPowerError> {
    match catch_unwind(AssertUnwindSafe(run)) {
        Ok(result) => result,
        Err(payload) => Err(MaxPowerError::Panicked {
            context: format!(
                "sweep point at activity {activity}: {}",
                supervise::panic_message(payload.as_ref())
            ),
            panics: 1,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpe_netlist::{generate, Iscas85};

    fn sweep_config() -> EstimationConfig {
        EstimationConfig {
            relative_error: 0.10,
            finite_population: Some(50_000),
            max_hyper_samples: 400,
            ..EstimationConfig::default()
        }
    }

    #[test]
    fn higher_activity_higher_max_power() {
        let circuit = generate(Iscas85::C432, 3).unwrap();
        let points =
            sweep_activity(&circuit, &[0.1, 0.9], DelayModel::Zero, &sweep_config(), 7).unwrap();
        // A hard-failed point would make this comparison meaningless, so
        // surface it as a test failure rather than a panic mid-closure.
        let est = |p: &SweepPoint| match &p.result {
            Ok(e) => e.estimate_mw,
            Err(MaxPowerError::NotConverged { estimate_mw, .. }) => *estimate_mw,
            Err(e) => unreachable!("sweep point at activity {} failed hard: {e}", p.activity),
        };
        assert!(
            est(&points[1]) > est(&points[0]),
            "activity 0.9 ({}) should out-power 0.1 ({})",
            est(&points[1]),
            est(&points[0])
        );
    }

    #[test]
    fn points_are_independent_of_sweep_composition() {
        let circuit = generate(Iscas85::C432, 3).unwrap();
        let solo = sweep_activity(&circuit, &[0.5], DelayModel::Zero, &sweep_config(), 9).unwrap();
        let multi =
            sweep_activity(&circuit, &[0.5, 0.7], DelayModel::Zero, &sweep_config(), 9).unwrap();
        let a = solo[0].result.as_ref().map(|e| e.estimate_mw).ok();
        let b = multi[0].result.as_ref().map(|e| e.estimate_mw).ok();
        assert_eq!(a, b, "prefix points must not depend on later points");
    }

    #[test]
    fn validation() {
        let circuit = generate(Iscas85::C432, 3).unwrap();
        assert!(sweep_activity(&circuit, &[], DelayModel::Zero, &sweep_config(), 1).is_err());
        assert!(sweep_activity(&circuit, &[1.5], DelayModel::Zero, &sweep_config(), 1).is_err());
    }

    #[test]
    fn panicking_point_is_contained_as_a_failed_result() {
        let result = catch_point(0.4, || panic!("simulator assertion tripped"));
        match result {
            Err(MaxPowerError::Panicked { context, panics }) => {
                assert!(context.contains("activity 0.4"));
                assert!(context.contains("simulator assertion tripped"));
                assert_eq!(panics, 1);
            }
            other => unreachable!("expected a contained panic, got {other:?}"),
        }
        // Non-panicking closures pass through untouched.
        let err = catch_point(0.5, || {
            Err(MaxPowerError::Source {
                message: "plain failure".into(),
            })
        });
        assert!(matches!(err, Err(MaxPowerError::Source { .. })));
    }
}
