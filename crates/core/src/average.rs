//! Average power estimation — the companion problem (and a baseline for
//! intuition: the *mean* of the power distribution is easy, its *endpoint*
//! is the hard part this crate exists for).
//!
//! A plain Monte-Carlo mean with a Student-t stopping rule, mirroring the
//! maximum estimator's interface so the two read side by side. This is the
//! classic McPower/Burch-style statistical average power estimation that
//! reference \[10\] of the paper builds on.

use rand::RngCore;

use mpe_stats::dist::StudentT;

use crate::error::MaxPowerError;
use crate::estimator::EstimateHistoryEntry;
use crate::source::PowerSource;

/// Result of an average-power estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AveragePowerEstimate {
    /// The estimated mean power (mW).
    pub mean_mw: f64,
    /// Confidence interval at the configured level (mW).
    pub confidence_interval: (f64, f64),
    /// Achieved relative half-width.
    pub relative_error: f64,
    /// Units sampled.
    pub units_used: usize,
}

/// Estimates the *average* power to a relative error `epsilon` at the given
/// confidence level, batching `batch` simulations between convergence
/// checks.
///
/// # Errors
///
/// Returns [`MaxPowerError::InvalidConfig`] for invalid `epsilon`,
/// `confidence`, or a zero `batch`; [`MaxPowerError::NotConverged`] if
/// `max_units` is exhausted first; and propagates source failures.
///
/// # Example
///
/// ```
/// use maxpower::average::estimate_average_power;
/// use maxpower::FnSource;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), maxpower::MaxPowerError> {
/// let mut source = FnSource::new(|rng: &mut dyn rand::RngCore| {
///     let mut b = [0u8; 1];
///     rng.fill_bytes(&mut b);
///     2.0 + b[0] as f64 / 255.0
/// });
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
/// let est = estimate_average_power(&mut source, 0.02, 0.95, 100, 1_000_000, &mut rng)?;
/// assert!((est.mean_mw - 2.5).abs() < 0.1);
/// assert!(est.relative_error <= 0.02);
/// # Ok(())
/// # }
/// ```
pub fn estimate_average_power(
    source: &mut dyn PowerSource,
    epsilon: f64,
    confidence: f64,
    batch: usize,
    max_units: usize,
    rng: &mut dyn RngCore,
) -> Result<AveragePowerEstimate, MaxPowerError> {
    if !(epsilon > 0.0 && epsilon < 1.0) {
        return Err(MaxPowerError::InvalidConfig {
            message: format!("epsilon must be in (0, 1), got {epsilon}"),
        });
    }
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(MaxPowerError::InvalidConfig {
            message: format!("confidence must be in (0, 1), got {confidence}"),
        });
    }
    if batch == 0 {
        return Err(MaxPowerError::InvalidConfig {
            message: "batch must be at least 1".to_string(),
        });
    }

    let mut n = 0usize;
    let mut mean = 0.0f64;
    let mut m2 = 0.0f64; // Welford
    let mut observed_max = f64::NEG_INFINITY;
    let mut history: Vec<EstimateHistoryEntry> = Vec::new();
    loop {
        for _ in 0..batch {
            let x = source.sample(rng)?;
            n += 1;
            observed_max = observed_max.max(x);
            let delta = x - mean;
            mean += delta / n as f64;
            m2 += delta * (x - mean);
        }
        let rel = if n >= 2 && mean.abs() > 0.0 {
            let var = m2 / (n as f64 - 1.0);
            let t = StudentT::new((n - 1) as f64)?.two_sided_critical(confidence)?;
            let half = t * (var / n as f64).sqrt();
            let rel = half / mean.abs();
            if rel <= epsilon {
                return Ok(AveragePowerEstimate {
                    mean_mw: mean,
                    confidence_interval: (mean - half, mean + half),
                    relative_error: rel,
                    units_used: n,
                });
            }
            rel
        } else {
            f64::INFINITY
        };
        history.push(EstimateHistoryEntry {
            k: n / batch,
            mean_mw: mean,
            relative_half_width: rel,
            units_used: n,
        });
        if n >= max_units {
            return Err(MaxPowerError::NotConverged {
                estimate_mw: mean,
                achieved_relative_error: rel,
                hyper_samples: n / batch,
                observed_max_mw: observed_max,
                units_used: n,
                history,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FnSource;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn estimates_uniform_mean() {
        let mut source = FnSource::new(|rng: &mut dyn RngCore| {
            let r = rng;
            r.gen::<f64>() * 10.0
        });
        let mut rng = SmallRng::seed_from_u64(1);
        let est =
            estimate_average_power(&mut source, 0.01, 0.95, 200, 10_000_000, &mut rng).unwrap();
        assert!((est.mean_mw - 5.0).abs() < 0.15, "{}", est.mean_mw);
        assert!(est.relative_error <= 0.01);
        assert!(est.confidence_interval.0 < 5.0 && est.confidence_interval.1 > 4.8);
    }

    #[test]
    fn average_needs_far_fewer_units_than_maximum() {
        // The motivating asymmetry: means are cheap, maxima are not.
        let mut source = FnSource::new(|rng: &mut dyn RngCore| {
            let r = rng;
            5.0 + r.gen::<f64>()
        });
        let mut rng = SmallRng::seed_from_u64(2);
        let est = estimate_average_power(&mut source, 0.05, 0.90, 30, 1_000_000, &mut rng).unwrap();
        assert!(est.units_used <= 60, "{} units", est.units_used);
    }

    #[test]
    fn respects_unit_cap() {
        let mut source = FnSource::new(|rng: &mut dyn RngCore| {
            let r = rng;
            r.gen::<f64>().powi(8) * 1e6 // wild variance
        });
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(matches!(
            estimate_average_power(&mut source, 1e-6, 0.99, 50, 500, &mut rng),
            Err(MaxPowerError::NotConverged { .. })
        ));
    }

    #[test]
    fn validates_arguments() {
        let mut source = FnSource::new(|_: &mut dyn RngCore| 1.0);
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(estimate_average_power(&mut source, 0.0, 0.9, 10, 100, &mut rng).is_err());
        assert!(estimate_average_power(&mut source, 0.05, 1.0, 10, 100, &mut rng).is_err());
        assert!(estimate_average_power(&mut source, 0.05, 0.9, 0, 100, &mut rng).is_err());
    }
}
