//! Fault injection for power sources.
//!
//! [`FaultInjectingSource`] wraps any [`PowerSource`] and perturbs its
//! behaviour from an *independent* seeded RNG: transient errors, stalls
//! surfaced as deadline errors, NaN/∞/negative readings, and silent value
//! corruption. Because the fault stream has its own RNG, the same wrapper
//! seed injects the same fault sequence regardless of how the estimation
//! RNG is consumed — which makes resilience tests reproducible and lets a
//! run's [`RunHealth`](crate::RunHealth) be checked against the injector's
//! own [`FaultStats`] ledger, fault for fault.
//!
//! ```
//! use maxpower::{FaultConfig, FaultInjectingSource, FnSource, PowerSource};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let inner = FnSource::new(|rng: &mut dyn rand::RngCore| {
//!     use rand::Rng;
//!     5.0 + rng.gen::<f64>()
//! });
//! let cfg = FaultConfig {
//!     seed: 7,
//!     error_rate: 0.10,
//!     nan_rate: 0.01,
//!     ..FaultConfig::default()
//! };
//! let mut source = FaultInjectingSource::new(inner, cfg).unwrap();
//! let mut rng = SmallRng::seed_from_u64(1);
//! let mut errors = 0;
//! for _ in 0..1000 {
//!     if source.sample(&mut rng).is_err() {
//!         errors += 1;
//!     }
//! }
//! assert_eq!(errors, source.stats().errors + source.stats().stalls);
//! ```

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

use crate::error::MaxPowerError;
use crate::source::PowerSource;

/// Fault mix injected by a [`FaultInjectingSource`].
///
/// Each rate is the per-call probability of that fault; at most one fault
/// fires per call (a single uniform roll is compared against cumulative
/// thresholds, so the rates must sum to at most 1). Faults are drawn
/// *before* the inner source is consulted for error/stall faults — a
/// faulted call never touches the inner source, mimicking a simulator
/// process that died before producing a vector — and *after* it for
/// reading faults (NaN/∞/negative/corrupt), which perturb a real reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the injector's private RNG.
    pub seed: u64,
    /// Probability of a transient error (`MaxPowerError::Source`).
    pub error_rate: f64,
    /// Probability of a stall surfaced as a deadline-exceeded error.
    /// Stalls are modelled as errors rather than real delays so tests
    /// stay fast; a production wrapper would time the inner call out.
    pub stall_rate: f64,
    /// Probability the reading is replaced by NaN.
    pub nan_rate: f64,
    /// Probability the reading is replaced by `+∞`.
    pub inf_rate: f64,
    /// Probability the reading is replaced by a strictly negative value
    /// (`-(|p| + 1)`).
    pub negative_rate: f64,
    /// Probability the reading is silently scaled by
    /// [`corrupt_scale`](Self::corrupt_scale) — a plausible-looking but
    /// wrong value, the nastiest fault class because no policy can detect
    /// it from the reading alone.
    pub corrupt_rate: f64,
    /// Multiplier applied by a corruption fault.
    pub corrupt_scale: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            error_rate: 0.0,
            stall_rate: 0.0,
            nan_rate: 0.0,
            inf_rate: 0.0,
            negative_rate: 0.0,
            corrupt_rate: 0.0,
            corrupt_scale: 1e3,
        }
    }
}

impl FaultConfig {
    /// Validates the fault mix.
    ///
    /// # Errors
    ///
    /// Returns [`MaxPowerError::InvalidConfig`] when any rate is outside
    /// `[0, 1]`, the rates sum past 1, or the corruption scale is not
    /// finite.
    pub fn validate(&self) -> Result<(), MaxPowerError> {
        let fail = |message: String| Err(MaxPowerError::InvalidConfig { message });
        let rates = [
            ("error_rate", self.error_rate),
            ("stall_rate", self.stall_rate),
            ("nan_rate", self.nan_rate),
            ("inf_rate", self.inf_rate),
            ("negative_rate", self.negative_rate),
            ("corrupt_rate", self.corrupt_rate),
        ];
        for (name, rate) in rates {
            if !(0.0..=1.0).contains(&rate) {
                return fail(format!("{name} must be in [0, 1], got {rate}"));
            }
        }
        let total: f64 = rates.iter().map(|(_, r)| r).sum();
        if total > 1.0 {
            return fail(format!("fault rates must sum to at most 1, got {total}"));
        }
        if !self.corrupt_scale.is_finite() {
            return fail(format!(
                "corrupt_scale must be finite, got {}",
                self.corrupt_scale
            ));
        }
        Ok(())
    }
}

/// Ground-truth ledger of every fault a [`FaultInjectingSource`] injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Calls that returned an injected transient error.
    pub errors: usize,
    /// Calls that returned an injected stall (deadline) error.
    pub stalls: usize,
    /// Readings replaced by NaN.
    pub nans: usize,
    /// Readings replaced by `+∞`.
    pub infs: usize,
    /// Readings replaced by a negative value.
    pub negatives: usize,
    /// Readings silently corrupted.
    pub corruptions: usize,
    /// Calls that passed through untouched.
    pub clean: usize,
}

impl FaultStats {
    /// Faults injected in total (everything except clean passthroughs).
    pub fn total_injected(&self) -> usize {
        self.errors + self.stalls + self.nans + self.infs + self.negatives + self.corruptions
    }

    /// Injected faults that surfaced as `Err` from `sample` (and thus
    /// consumed no unit of the estimation budget).
    pub fn erroring(&self) -> usize {
        self.errors + self.stalls
    }

    /// Injected faults that surfaced as an invalid `Ok` reading (NaN, ∞,
    /// negative) — these *do* consume a unit before any policy discards
    /// them.
    pub fn invalid_readings(&self) -> usize {
        self.nans + self.infs + self.negatives
    }
}

/// Decorator that injects faults into an inner [`PowerSource`].
///
/// The injector draws from its own [`SmallRng`] (seeded by
/// [`FaultConfig::seed`]), never from the estimation RNG passed to
/// `sample`, so the fault sequence is a pure function of the wrapper seed
/// and the call index. Inner-source errors (if any) pass through
/// untouched and are *not* counted as injected faults.
#[derive(Debug, Clone)]
pub struct FaultInjectingSource<S> {
    inner: S,
    config: FaultConfig,
    rng: SmallRng,
    stats: FaultStats,
    telemetry: mpe_telemetry::Telemetry,
}

impl<S: PowerSource> FaultInjectingSource<S> {
    /// Wraps `inner` with the given fault mix.
    ///
    /// # Errors
    ///
    /// Returns [`MaxPowerError::InvalidConfig`] when `config` is invalid.
    pub fn new(inner: S, config: FaultConfig) -> Result<Self, MaxPowerError> {
        config.validate()?;
        Ok(FaultInjectingSource {
            inner,
            rng: SmallRng::seed_from_u64(config.seed),
            config,
            stats: FaultStats::default(),
            telemetry: mpe_telemetry::Telemetry::disabled(),
        })
    }

    /// Attaches a telemetry handle: every injected fault is counted by
    /// kind (`fault_errors`, `fault_stalls`, `fault_nans`, …) as it fires,
    /// so a trace can be cross-checked against the [`FaultStats`] ledger.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: mpe_telemetry::Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The fault ledger so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// The configured fault mix.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps the decorator, discarding the ledger.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn unit_roll(&mut self) -> f64 {
        (self.rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<S: PowerSource> PowerSource for FaultInjectingSource<S> {
    fn sample(&mut self, rng: &mut dyn RngCore) -> Result<f64, MaxPowerError> {
        let c = self.config;
        let roll = self.unit_roll();
        // Pre-call faults: the inner source is never reached.
        let mut edge = c.error_rate;
        if roll < edge {
            self.stats.errors += 1;
            self.telemetry
                .counter(mpe_telemetry::names::FAULT_ERRORS, 1);
            return Err(MaxPowerError::Source {
                message: "injected transient source error".to_string(),
            });
        }
        edge += c.stall_rate;
        if roll < edge {
            self.stats.stalls += 1;
            self.telemetry
                .counter(mpe_telemetry::names::FAULT_STALLS, 1);
            return Err(MaxPowerError::Source {
                message: "injected stall: source exceeded its deadline".to_string(),
            });
        }
        // Real inner call; inner errors pass through uncounted.
        let p = self.inner.sample(rng)?;
        // Post-call reading faults.
        edge += c.nan_rate;
        if roll < edge {
            self.stats.nans += 1;
            self.telemetry.counter(mpe_telemetry::names::FAULT_NANS, 1);
            return Ok(f64::NAN);
        }
        edge += c.inf_rate;
        if roll < edge {
            self.stats.infs += 1;
            self.telemetry.counter(mpe_telemetry::names::FAULT_INFS, 1);
            return Ok(f64::INFINITY);
        }
        edge += c.negative_rate;
        if roll < edge {
            self.stats.negatives += 1;
            self.telemetry
                .counter(mpe_telemetry::names::FAULT_NEGATIVES, 1);
            return Ok(-(p.abs() + 1.0));
        }
        edge += c.corrupt_rate;
        if roll < edge {
            self.stats.corruptions += 1;
            self.telemetry
                .counter(mpe_telemetry::names::FAULT_CORRUPTIONS, 1);
            return Ok(p * c.corrupt_scale);
        }
        self.stats.clean += 1;
        Ok(p)
    }

    fn population_size(&self) -> Option<u64> {
        self.inner.population_size()
    }

    /// Reseeds the private fault RNG from the wrapper seed and the
    /// hyper-sample index, making the fault stream a pure function of
    /// `(seed, k)` — so a parallel run injects exactly the same faults into
    /// hyper-sample `k` no matter which worker draws it, and a resumed run
    /// replays the same faults the interrupted run saw.
    fn begin_hyper_sample(&mut self, k: u64) {
        self.rng =
            SmallRng::seed_from_u64(crate::engine::derive_seed(self.config.seed, k as usize));
        self.inner.begin_hyper_sample(k);
    }

    // Lane batching happens below the fault layer: faults are decided per
    // draw here, while the wrapped source banks and serves prefetched
    // readings — the two streams never interact, so forwarding the planning
    // hooks keeps fault-injected runs batched *and* bit-identical.
    fn plan_lookahead(&self, sample_size: usize) -> usize {
        self.inner.plan_lookahead(sample_size)
    }

    fn plan_hyper_samples(&mut self, master_seed: u64, upcoming: &[u64], expected_units: usize) {
        self.inner
            .plan_hyper_samples(master_seed, upcoming, expected_units);
    }

    fn lane_stats(&self) -> Option<crate::source::LaneStats> {
        self.inner.lane_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FnSource;
    use rand::SeedableRng;

    fn constant_five() -> FnSource<impl FnMut(&mut dyn RngCore) -> f64> {
        FnSource::new(|_rng: &mut dyn RngCore| 5.0)
    }

    #[test]
    fn rejects_bad_config() {
        let bad = FaultConfig {
            error_rate: 1.5,
            ..FaultConfig::default()
        };
        assert!(FaultInjectingSource::new(constant_five(), bad).is_err());
        let bad = FaultConfig {
            error_rate: 0.6,
            nan_rate: 0.6,
            ..FaultConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = FaultConfig {
            corrupt_scale: f64::INFINITY,
            ..FaultConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn zero_rates_pass_through_untouched() {
        let mut s = FaultInjectingSource::new(constant_five(), FaultConfig::default()).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng).unwrap(), 5.0);
        }
        assert_eq!(s.stats().clean, 100);
        assert_eq!(s.stats().total_injected(), 0);
    }

    #[test]
    fn ledger_accounts_every_call() {
        let cfg = FaultConfig {
            seed: 42,
            error_rate: 0.1,
            stall_rate: 0.05,
            nan_rate: 0.05,
            inf_rate: 0.05,
            negative_rate: 0.05,
            corrupt_rate: 0.05,
            corrupt_scale: 100.0,
        };
        let mut s = FaultInjectingSource::new(constant_five(), cfg).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let calls = 2000;
        let (mut errs, mut nans, mut infs, mut negs, mut corrupt, mut clean) = (0, 0, 0, 0, 0, 0);
        for _ in 0..calls {
            match s.sample(&mut rng) {
                Err(MaxPowerError::Source { .. }) => errs += 1,
                Err(other) => panic!("unexpected error: {other}"),
                Ok(p) if p.is_nan() => nans += 1,
                Ok(p) if p == f64::INFINITY => infs += 1,
                Ok(p) if p < 0.0 => negs += 1,
                Ok(500.0) => corrupt += 1,
                Ok(p) => {
                    assert_eq!(p, 5.0);
                    clean += 1;
                }
            }
        }
        let st = *s.stats();
        assert_eq!(errs, st.errors + st.stalls);
        assert_eq!(nans, st.nans);
        assert_eq!(infs, st.infs);
        assert_eq!(negs, st.negatives);
        assert_eq!(corrupt, st.corruptions);
        assert_eq!(clean, st.clean);
        assert_eq!(st.total_injected() + st.clean, calls);
        // With a 35 % total fault rate over 2000 calls, faults certainly fired.
        assert!(st.total_injected() > 0, "fault mix never fired");
        assert_eq!(st.erroring(), st.errors + st.stalls);
        assert_eq!(st.invalid_readings(), st.nans + st.infs + st.negatives);
    }

    #[test]
    fn fault_stream_is_deterministic_in_wrapper_seed() {
        let cfg = FaultConfig {
            seed: 9,
            error_rate: 0.2,
            nan_rate: 0.1,
            ..FaultConfig::default()
        };
        let run = |est_seed: u64| {
            let mut s = FaultInjectingSource::new(constant_five(), cfg).unwrap();
            let mut rng = SmallRng::seed_from_u64(est_seed);
            let pattern: Vec<u8> = (0..200)
                .map(|_| match s.sample(&mut rng) {
                    Err(_) => 2,
                    Ok(p) if p.is_nan() => 1,
                    Ok(_) => 0,
                })
                .collect();
            pattern
        };
        // Same wrapper seed, different estimation seeds: identical faults.
        assert_eq!(run(1), run(999));
    }

    #[test]
    fn telemetry_counters_match_the_ledger() {
        let cfg = FaultConfig {
            seed: 42,
            error_rate: 0.1,
            stall_rate: 0.05,
            nan_rate: 0.05,
            inf_rate: 0.05,
            negative_rate: 0.05,
            corrupt_rate: 0.05,
            corrupt_scale: 100.0,
        };
        let telemetry = mpe_telemetry::Telemetry::enabled();
        let mut s = FaultInjectingSource::new(constant_five(), cfg)
            .unwrap()
            .with_telemetry(telemetry.clone());
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..2000 {
            let _ = s.sample(&mut rng);
        }
        let st = *s.stats();
        assert!(st.total_injected() > 0);
        let snap = telemetry.snapshot();
        use mpe_telemetry::names;
        assert_eq!(snap.counter(names::FAULT_ERRORS), st.errors as u64);
        assert_eq!(snap.counter(names::FAULT_STALLS), st.stalls as u64);
        assert_eq!(snap.counter(names::FAULT_NANS), st.nans as u64);
        assert_eq!(snap.counter(names::FAULT_INFS), st.infs as u64);
        assert_eq!(snap.counter(names::FAULT_NEGATIVES), st.negatives as u64);
        assert_eq!(
            snap.counter(names::FAULT_CORRUPTIONS),
            st.corruptions as u64
        );
    }

    #[test]
    fn passes_population_size_through() {
        let s = FaultInjectingSource::new(constant_five(), FaultConfig::default()).unwrap();
        assert_eq!(s.population_size(), constant_five().population_size());
    }
}
