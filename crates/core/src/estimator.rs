//! The iterative estimation procedure — the paper's Figure 4 and
//! Theorems 5–6.
//!
//! Hyper-samples `P̂_{i,MAX}` are (approximately) normal around the true
//! maximum `ω(F)` with variance `σ_μ²/m`. The engine accumulates them,
//! forms the Student-t confidence interval
//! `P̄ ± t_{l,k−1}·s/√k` (Eqn 3.8), and stops when the relative half-width
//! `t·s/(√k·P̄)` falls below the requested `ε` — delivering, for the first
//! time among maximum-power estimators, *any* user-specified error and
//! confidence level.
//!
//! Two robustness departures from the idealized loop:
//!
//! * Hitting the hyper-sample cap is **not an error**: the run returns its
//!   best partial estimate tagged [`RunStatus::BudgetExhausted`]. Callers
//!   that require convergence use
//!   [`MaxPowerEstimate::into_converged`].
//! * When the running mean is within
//!   [`mean_floor_mw`](EstimationConfig::mean_floor_mw) of zero the
//!   relative criterion divides by ≈0 and can never fire; the stopping
//!   rule switches to the absolute criterion
//!   [`absolute_error_mw`](EstimationConfig::absolute_error_mw) and flags
//!   [`RunHealth::zero_mean_guard`].

use rand::RngCore;

use mpe_telemetry::Telemetry;

use crate::checkpoint::Checkpoint;
use crate::config::EstimationConfig;
use crate::engine::{run_sequential, RngDriver};
use crate::error::MaxPowerError;
use crate::health::{EstimatorKind, RunHealth, RunStatus};
use crate::source::PowerSource;

/// One row of the convergence history: the state after each hyper-sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateHistoryEntry {
    /// Hyper-samples accumulated so far (`k`).
    pub k: usize,
    /// Running mean estimate `P̄` (mW).
    pub mean_mw: f64,
    /// Relative half-width of the t-interval (undefined before `k = 2` and
    /// under the zero-mean guard; reported as infinity there).
    pub relative_half_width: f64,
    /// Cumulative vector pairs consumed.
    pub units_used: usize,
}

/// The final estimate with its confidence statement and health record.
#[derive(Debug, Clone)]
pub struct MaxPowerEstimate {
    /// The maximum-power estimate `P̄` (mW).
    pub estimate_mw: f64,
    /// The confidence interval at the configured level (mW).
    pub confidence_interval: (f64, f64),
    /// Achieved relative half-width (`≤ ε` when converged; infinite under
    /// the zero-mean guard).
    pub relative_error: f64,
    /// The configured confidence level.
    pub confidence: f64,
    /// Hyper-samples consumed (`k`).
    pub hyper_samples: usize,
    /// Total vector pairs simulated — the paper's efficiency metric.
    pub units_used: usize,
    /// Largest single unit power observed anywhere in the run (a hard
    /// lower bound on the true maximum).
    pub observed_max_mw: f64,
    /// How the run ended: converged, degraded-but-converged, or capped.
    pub status: RunStatus,
    /// Aggregated fault/fallback/guard counters for the whole run.
    pub health: RunHealth,
    /// Per-iteration convergence history.
    pub history: Vec<EstimateHistoryEntry>,
    /// The individual hyper-sample estimates.
    pub hyper_estimates: Vec<f64>,
    /// Which estimator produced each hyper-sample (parallel to
    /// [`hyper_estimates`](Self::hyper_estimates)).
    pub hyper_estimators: Vec<EstimatorKind>,
    /// Per-hyper-sample estimator audit trail (parallel to
    /// [`hyper_estimates`](Self::hyper_estimates)): rung, reason code and
    /// goodness-of-fit summaries for every committed fit.
    pub fit_diagnostics: Vec<crate::health::FitDiagnostics>,
}

impl MaxPowerEstimate {
    /// Converts a capped run into the classic [`MaxPowerError::NotConverged`]
    /// error, for callers that require the error/confidence contract to
    /// have been met. Converged and degraded-but-converged runs pass
    /// through unchanged.
    ///
    /// # Errors
    ///
    /// [`MaxPowerError::NotConverged`] carrying the full partial result
    /// when the run ended [`RunStatus::BudgetExhausted`].
    pub fn into_converged(self) -> Result<MaxPowerEstimate, MaxPowerError> {
        if self.status.met_target() {
            Ok(self)
        } else {
            Err(MaxPowerError::NotConverged {
                estimate_mw: self.estimate_mw,
                achieved_relative_error: self.relative_error,
                hyper_samples: self.hyper_samples,
                observed_max_mw: self.observed_max_mw,
                units_used: self.units_used,
                history: self.history,
            })
        }
    }
}

/// The legacy entry point to the iterative maximum-power estimator (paper
/// Figure 4), superseded by [`Session`](crate::Session).
///
/// All three historical entry points — [`new`](Self::new),
/// [`run`](Self::run) and [`run_with_checkpoint`](Self::run_with_checkpoint)
/// — are deprecated thin shims over the same execution engine the session
/// API drives, so their results are unchanged; new code should build a
/// [`Session`](crate::Session) via
/// [`EstimatorBuilder`](crate::EstimatorBuilder) and pick a worker count
/// through [`RunOptions`](crate::RunOptions).
#[derive(Debug, Clone)]
pub struct MaxPowerEstimator {
    config: EstimationConfig,
    telemetry: Telemetry,
}

impl MaxPowerEstimator {
    /// Creates an estimator with the given configuration (telemetry
    /// disabled — instrumentation costs nothing until opted into).
    #[deprecated(
        since = "0.2.0",
        note = "build a Session via EstimatorBuilder::new(config).build() instead"
    )]
    pub fn new(config: EstimationConfig) -> Self {
        MaxPowerEstimator {
            config,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle: the run emits phase spans
    /// (`run`/`hyper_sample`/`simulate`/`fit`/`fallback`/`checkpoint`),
    /// work counters and convergence gauges through it. The handle never
    /// touches the estimation RNG, so a fixed-seed run's results are
    /// bit-identical with telemetry enabled or disabled.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The attached telemetry handle (disabled by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The configuration.
    pub fn config(&self) -> &EstimationConfig {
        &self.config
    }

    /// Runs the iterative procedure against a power source.
    ///
    /// If the source exposes a finite population size and the configuration
    /// does not override it, the finite-population estimator (§3.4) is used
    /// automatically.
    ///
    /// A run that reaches the hyper-sample cap returns its partial
    /// estimate with [`RunStatus::BudgetExhausted`] rather than an error;
    /// use [`MaxPowerEstimate::into_converged`] for the strict contract.
    ///
    /// # Errors
    ///
    /// * [`MaxPowerError::InvalidConfig`] — bad configuration;
    /// * hyper-sample and simulation failures, as filtered by the
    ///   configured [`SamplePolicy`](crate::SamplePolicy) and
    ///   [`FallbackPolicy`](crate::FallbackPolicy).
    #[deprecated(
        since = "0.2.0",
        note = "use Session::run (derived per-index RNG streams) or Session::run_source"
    )]
    pub fn run(
        &self,
        source: &mut dyn PowerSource,
        rng: &mut dyn RngCore,
    ) -> Result<MaxPowerEstimate, MaxPowerError> {
        run_sequential(
            &self.config,
            &self.telemetry,
            source,
            RngDriver::Stream(rng),
            None,
            &mut |_| {},
            &crate::supervise::Supervision::default(),
        )
    }

    /// Runs the procedure with checkpoint/resume support.
    ///
    /// Hyper-sample `k` draws from a private RNG stream derived from
    /// `master_seed` and `k`, so a run resumed from any checkpoint
    /// produces *bit-identical* results to the uninterrupted run with the
    /// same seed. `save` is invoked with a fresh [`Checkpoint`] after
    /// every completed hyper-sample; persist it wherever is convenient
    /// (the `mpe` CLI writes it to the `--checkpoint` path atomically).
    ///
    /// # Errors
    ///
    /// * [`MaxPowerError::CheckpointMismatch`] — `resume` was produced
    ///   under a different configuration, seed or schema version;
    /// * everything [`run`](Self::run) can raise.
    #[deprecated(
        since = "0.2.0",
        note = "use Session::run with RunOptions::seeded/resume/save_with"
    )]
    pub fn run_with_checkpoint(
        &self,
        source: &mut dyn PowerSource,
        master_seed: u64,
        resume: Option<&Checkpoint>,
        save: &mut dyn FnMut(&Checkpoint),
    ) -> Result<MaxPowerEstimate, MaxPowerError> {
        run_sequential(
            &self.config,
            &self.telemetry,
            source,
            RngDriver::Derived(master_seed),
            resume,
            save,
            &crate::supervise::Supervision::default(),
        )
    }
}

#[cfg(test)]
mod tests {
    // These tests are the legacy-equivalence coverage: they exercise the
    // deprecated entry points on purpose, pinning their behaviour while the
    // session API carries new callers.
    #![allow(deprecated)]

    use super::*;
    use crate::engine::derive_seed;
    use crate::source::FnSource;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn weibull_source(alpha: f64, beta: f64, mu: f64) -> impl FnMut(&mut dyn RngCore) -> f64 {
        move |rng: &mut dyn RngCore| {
            let r = rng;
            let u: f64 = r.gen_range(1e-12..1.0f64);
            mu - (-u.ln() / beta).powf(1.0 / alpha)
        }
    }

    #[test]
    fn converges_on_smooth_bounded_source() {
        let mut source = FnSource::new(weibull_source(3.0, 1.0, 10.0));
        let est = MaxPowerEstimator::new(EstimationConfig::default());
        let mut rng = SmallRng::seed_from_u64(1);
        let r = est.run(&mut source, &mut rng).unwrap();
        assert_eq!(r.status, RunStatus::Converged);
        assert!(r.health.is_clean());
        assert!(r.relative_error <= 0.05);
        assert!(
            (r.estimate_mw - 10.0).abs() / 10.0 < 0.10,
            "{}",
            r.estimate_mw
        );
        assert!(r.hyper_samples >= 2);
        assert_eq!(r.units_used, 300 * r.hyper_samples);
        assert_eq!(r.history.len(), r.hyper_samples);
        assert_eq!(r.hyper_estimates.len(), r.hyper_samples);
        assert_eq!(r.hyper_estimators.len(), r.hyper_samples);
        assert!(r.hyper_estimators.iter().all(|&e| e == EstimatorKind::Mle));
        assert!(r.confidence_interval.0 <= r.estimate_mw);
        assert!(r.confidence_interval.1 >= r.estimate_mw);
        assert!(r.observed_max_mw <= 10.0);
    }

    #[test]
    fn coverage_is_near_the_configured_confidence() {
        // Repeat the full procedure many times; the truth (endpoint 10)
        // should fall inside the CI about 90% of the time. This is the
        // paper's Theorem 6 put to the test. Allow generous slack: k is
        // often small, so the normality is approximate.
        let mut hits = 0;
        let runs = 40;
        for seed in 0..runs {
            let mut source = FnSource::new(weibull_source(3.0, 1.0, 10.0));
            let est = MaxPowerEstimator::new(EstimationConfig::default());
            let mut rng = SmallRng::seed_from_u64(100 + seed);
            let r = est.run(&mut source, &mut rng).unwrap();
            // Success criterion from the paper's tables: relative error of
            // the point estimate within the target band.
            if (r.estimate_mw - 10.0).abs() / 10.0 <= 0.05 {
                hits += 1;
            }
        }
        assert!(
            hits as f64 / runs as f64 >= 0.75,
            "only {hits}/{runs} runs within 5%"
        );
    }

    #[test]
    fn history_units_monotone() {
        let mut source = FnSource::new(weibull_source(4.0, 2.0, 5.0));
        let est = MaxPowerEstimator::new(EstimationConfig::default());
        let mut rng = SmallRng::seed_from_u64(2);
        let r = est.run(&mut source, &mut rng).unwrap();
        for w in r.history.windows(2) {
            assert!(w[1].units_used > w[0].units_used);
            assert_eq!(w[1].k, w[0].k + 1);
        }
    }

    #[test]
    fn respects_max_hyper_samples() {
        // An extremely noisy source that cannot converge at 0.1% error with
        // a tiny cap: the partial estimate comes back BudgetExhausted, and
        // into_converged recovers the strict NotConverged contract with the
        // full partial result attached.
        let mut source = FnSource::new(|rng: &mut dyn RngCore| {
            let r = rng;
            r.gen::<f64>().powf(0.2) * 100.0
        });
        let config = EstimationConfig {
            relative_error: 0.001,
            max_hyper_samples: 3,
            ..EstimationConfig::default()
        };
        let est = MaxPowerEstimator::new(config);
        let mut rng = SmallRng::seed_from_u64(3);
        let r = est.run(&mut source, &mut rng).unwrap();
        assert_eq!(r.status, RunStatus::BudgetExhausted);
        assert!(!r.status.met_target());
        assert_eq!(r.hyper_samples, 3);
        match r.into_converged() {
            Err(MaxPowerError::NotConverged {
                hyper_samples,
                observed_max_mw,
                units_used,
                history,
                ..
            }) => {
                assert_eq!(hyper_samples, 3);
                assert!(observed_max_mw > 0.0);
                assert_eq!(units_used, 900);
                assert_eq!(history.len(), 3);
            }
            other => panic!("expected NotConverged, got {other:?}"),
        }
    }

    #[test]
    fn invalid_config_rejected_before_sampling() {
        let config = EstimationConfig {
            confidence: 2.0,
            ..EstimationConfig::default()
        };
        let est = MaxPowerEstimator::new(config);
        let mut source = FnSource::new(|_: &mut dyn RngCore| 1.0);
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(matches!(
            est.run(&mut source, &mut rng),
            Err(MaxPowerError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn finite_population_size_picked_up_from_source() {
        // With a declared finite population the estimator should generally
        // report slightly lower values than the raw-endpoint variant.
        let run = |pop: Option<u64>, seed: u64| {
            let mut source = FnSource::new(weibull_source(3.0, 1.0, 10.0));
            if let Some(v) = pop {
                source = source.with_population_size(v);
            }
            let est = MaxPowerEstimator::new(EstimationConfig::default());
            let mut rng = SmallRng::seed_from_u64(seed);
            est.run(&mut source, &mut rng).unwrap().estimate_mw
        };
        // Average over some seeds to compare the two estimators stably.
        let mean_inf: f64 = (0..10).map(|s| run(None, 50 + s)).sum::<f64>() / 10.0;
        let mean_fin: f64 = (0..10).map(|s| run(Some(1_000), 50 + s)).sum::<f64>() / 10.0;
        assert!(mean_fin <= mean_inf + 1e-9);
    }

    #[test]
    fn tighter_epsilon_costs_more_units() {
        let run = |eps: f64| {
            let mut source = FnSource::new(weibull_source(3.0, 1.0, 10.0));
            let config = EstimationConfig {
                relative_error: eps,
                max_hyper_samples: 2_000,
                ..EstimationConfig::default()
            };
            let est = MaxPowerEstimator::new(config);
            let mut rng = SmallRng::seed_from_u64(9);
            est.run(&mut source, &mut rng).unwrap().units_used
        };
        let loose = run(0.10);
        let tight = run(0.005);
        assert!(tight > loose, "tight {tight} vs loose {loose}");
    }

    #[test]
    fn zero_mean_guard_switches_to_absolute_criterion() {
        // A source symmetric around 0: the running mean hovers at ~0 where
        // the relative criterion divides by ≈0 and can never fire. The
        // guard switches to the absolute criterion so the run still ends,
        // and the switch is recorded in the health record.
        let mut source = FnSource::new(|rng: &mut dyn RngCore| {
            let r = rng;
            r.gen::<f64>() * 2e-10 - 1e-10
        });
        let config = EstimationConfig {
            absolute_error_mw: 1e-6,
            max_hyper_samples: 50,
            ..EstimationConfig::default()
        };
        let est = MaxPowerEstimator::new(config);
        let mut rng = SmallRng::seed_from_u64(11);
        let r = est.run(&mut source, &mut rng).unwrap();
        assert!(r.health.zero_mean_guard);
        assert!(
            r.status.met_target(),
            "guard should let the run stop: {r:?}"
        );
        let width = r.confidence_interval.1 - r.confidence_interval.0;
        assert!(width <= 2e-6, "width {width}");
    }

    #[test]
    fn derived_rng_mode_matches_itself_and_derives_distinct_streams() {
        let run = |seed: u64| {
            let mut source = FnSource::new(weibull_source(3.0, 1.0, 10.0));
            let est = MaxPowerEstimator::new(EstimationConfig::default());
            let mut saves = 0usize;
            let r = est
                .run_with_checkpoint(&mut source, seed, None, &mut |_| saves += 1)
                .unwrap();
            (r.estimate_mw, r.hyper_samples, saves)
        };
        let (a_est, a_k, a_saves) = run(7);
        let (b_est, b_k, b_saves) = run(7);
        assert_eq!(a_est, b_est);
        assert_eq!(a_k, b_k);
        assert_eq!(a_saves, a_k, "one checkpoint per hyper-sample");
        assert_eq!(b_saves, b_k);
        let (c_est, _, _) = run(8);
        assert_ne!(a_est, c_est, "different master seeds give different runs");
        assert_ne!(derive_seed(7, 0), derive_seed(7, 1));
        assert_ne!(derive_seed(7, 0), derive_seed(8, 0));
    }

    #[test]
    fn resume_from_any_checkpoint_matches_uninterrupted_run() {
        let make_source = || FnSource::new(weibull_source(3.0, 1.0, 10.0));
        let est = MaxPowerEstimator::new(EstimationConfig::default());
        // Uninterrupted run, recording every checkpoint.
        let mut checkpoints = Vec::new();
        let mut source = make_source();
        let full = est
            .run_with_checkpoint(&mut source, 21, None, &mut |cp| {
                checkpoints.push(cp.clone())
            })
            .unwrap();
        assert!(full.hyper_samples >= 2);
        // "Kill" the run after each prefix and resume: identical results.
        for cp in &checkpoints {
            let mut source = make_source();
            let resumed = est
                .run_with_checkpoint(&mut source, 21, Some(cp), &mut |_| {})
                .unwrap();
            assert_eq!(resumed.estimate_mw, full.estimate_mw);
            assert_eq!(resumed.hyper_samples, full.hyper_samples);
            assert_eq!(resumed.units_used, full.units_used);
            assert_eq!(resumed.hyper_estimates, full.hyper_estimates);
            assert_eq!(resumed.status, full.status);
        }
        // Resuming from the final checkpoint returns without new draws.
        let last = checkpoints.last().unwrap();
        let mut source = make_source();
        let mut extra_saves = 0usize;
        let resumed = est
            .run_with_checkpoint(&mut source, 21, Some(last), &mut |_| extra_saves += 1)
            .unwrap();
        assert_eq!(extra_saves, 0);
        assert_eq!(resumed.estimate_mw, full.estimate_mw);
    }

    #[test]
    fn resume_rejects_wrong_seed_or_config() {
        let est = MaxPowerEstimator::new(EstimationConfig::default());
        let mut source = FnSource::new(weibull_source(3.0, 1.0, 10.0));
        let mut checkpoints = Vec::new();
        est.run_with_checkpoint(&mut source, 5, None, &mut |cp| checkpoints.push(cp.clone()))
            .unwrap();
        let cp = checkpoints.first().unwrap();
        // Wrong seed.
        let mut source = FnSource::new(weibull_source(3.0, 1.0, 10.0));
        assert!(matches!(
            est.run_with_checkpoint(&mut source, 6, Some(cp), &mut |_| {}),
            Err(MaxPowerError::CheckpointMismatch { .. })
        ));
        // Wrong config.
        let config = EstimationConfig {
            relative_error: 0.01,
            ..EstimationConfig::default()
        };
        let strict = MaxPowerEstimator::new(config);
        let mut source = FnSource::new(weibull_source(3.0, 1.0, 10.0));
        assert!(matches!(
            strict.run_with_checkpoint(&mut source, 5, Some(cp), &mut |_| {}),
            Err(MaxPowerError::CheckpointMismatch { .. })
        ));
    }
}
