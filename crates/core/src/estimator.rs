//! The iterative estimation procedure — the paper's Figure 4 and
//! Theorems 5–6.
//!
//! Hyper-samples `P̂_{i,MAX}` are (approximately) normal around the true
//! maximum `ω(F)` with variance `σ_μ²/m`. The engine accumulates them,
//! forms the Student-t confidence interval
//! `P̄ ± t_{l,k−1}·s/√k` (Eqn 3.8), and stops when the relative half-width
//! `t·s/(√k·P̄)` falls below the requested `ε` — delivering, for the first
//! time among maximum-power estimators, *any* user-specified error and
//! confidence level.
//!
//! Two robustness departures from the idealized loop:
//!
//! * Hitting the hyper-sample cap is **not an error**: the run returns its
//!   best partial estimate tagged [`RunStatus::BudgetExhausted`]. Callers
//!   that require convergence use
//!   [`MaxPowerEstimate::into_converged`].
//! * When the running mean is within
//!   [`mean_floor_mw`](EstimationConfig::mean_floor_mw) of zero the
//!   relative criterion divides by ≈0 and can never fire; the stopping
//!   rule switches to the absolute criterion
//!   [`absolute_error_mw`](EstimationConfig::absolute_error_mw) and flags
//!   [`RunHealth::zero_mean_guard`].

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

use mpe_stats::dist::StudentT;
use mpe_telemetry::{names, SpanKind, Telemetry};

use crate::checkpoint::{
    config_fingerprint, Checkpoint, CheckpointHistoryEntry, CHECKPOINT_VERSION,
};
use crate::config::EstimationConfig;
use crate::error::MaxPowerError;
use crate::health::{EstimatorKind, RunHealth, RunStatus};
use crate::hyper::{generate_hyper_sample_traced, HyperSample};
use crate::report::TelemetrySummary;
use crate::source::PowerSource;

/// One row of the convergence history: the state after each hyper-sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateHistoryEntry {
    /// Hyper-samples accumulated so far (`k`).
    pub k: usize,
    /// Running mean estimate `P̄` (mW).
    pub mean_mw: f64,
    /// Relative half-width of the t-interval (undefined before `k = 2` and
    /// under the zero-mean guard; reported as infinity there).
    pub relative_half_width: f64,
    /// Cumulative vector pairs consumed.
    pub units_used: usize,
}

/// The final estimate with its confidence statement and health record.
#[derive(Debug, Clone)]
pub struct MaxPowerEstimate {
    /// The maximum-power estimate `P̄` (mW).
    pub estimate_mw: f64,
    /// The confidence interval at the configured level (mW).
    pub confidence_interval: (f64, f64),
    /// Achieved relative half-width (`≤ ε` when converged; infinite under
    /// the zero-mean guard).
    pub relative_error: f64,
    /// The configured confidence level.
    pub confidence: f64,
    /// Hyper-samples consumed (`k`).
    pub hyper_samples: usize,
    /// Total vector pairs simulated — the paper's efficiency metric.
    pub units_used: usize,
    /// Largest single unit power observed anywhere in the run (a hard
    /// lower bound on the true maximum).
    pub observed_max_mw: f64,
    /// How the run ended: converged, degraded-but-converged, or capped.
    pub status: RunStatus,
    /// Aggregated fault/fallback/guard counters for the whole run.
    pub health: RunHealth,
    /// Per-iteration convergence history.
    pub history: Vec<EstimateHistoryEntry>,
    /// The individual hyper-sample estimates.
    pub hyper_estimates: Vec<f64>,
    /// Which estimator produced each hyper-sample (parallel to
    /// [`hyper_estimates`](Self::hyper_estimates)).
    pub hyper_estimators: Vec<EstimatorKind>,
}

impl MaxPowerEstimate {
    /// Converts a capped run into the classic [`MaxPowerError::NotConverged`]
    /// error, for callers that require the error/confidence contract to
    /// have been met. Converged and degraded-but-converged runs pass
    /// through unchanged.
    ///
    /// # Errors
    ///
    /// [`MaxPowerError::NotConverged`] carrying the full partial result
    /// when the run ended [`RunStatus::BudgetExhausted`].
    pub fn into_converged(self) -> Result<MaxPowerEstimate, MaxPowerError> {
        if self.status.met_target() {
            Ok(self)
        } else {
            Err(MaxPowerError::NotConverged {
                estimate_mw: self.estimate_mw,
                achieved_relative_error: self.relative_error,
                hyper_samples: self.hyper_samples,
                observed_max_mw: self.observed_max_mw,
                units_used: self.units_used,
                history: self.history,
            })
        }
    }
}

/// Live (deserialized) estimator state shared by fresh and resumed runs.
struct RunState {
    estimates: Vec<f64>,
    estimators: Vec<EstimatorKind>,
    history: Vec<EstimateHistoryEntry>,
    units_used: usize,
    observed_max: f64,
    health: RunHealth,
}

impl RunState {
    fn new() -> Self {
        RunState {
            estimates: Vec::new(),
            estimators: Vec::new(),
            history: Vec::new(),
            units_used: 0,
            observed_max: f64::NEG_INFINITY,
            health: RunHealth::default(),
        }
    }

    fn from_checkpoint(cp: &Checkpoint) -> Self {
        RunState {
            estimates: cp.hyper_estimates.clone(),
            estimators: cp.hyper_estimators.clone(),
            history: cp.history.iter().map(EstimateHistoryEntry::from).collect(),
            units_used: cp.units_used,
            observed_max: cp.observed_max_mw.unwrap_or(f64::NEG_INFINITY),
            health: cp.health,
        }
    }

    fn to_checkpoint(&self, fingerprint: u64, master_seed: u64) -> Checkpoint {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            config_fingerprint: fingerprint,
            master_seed,
            hyper_estimates: self.estimates.clone(),
            hyper_estimators: self.estimators.clone(),
            history: self
                .history
                .iter()
                .map(CheckpointHistoryEntry::from)
                .collect(),
            units_used: self.units_used,
            observed_max_mw: self.observed_max.is_finite().then_some(self.observed_max),
            health: self.health,
            telemetry: None,
        }
    }
}

/// The t-interval around the running mean, evaluated against both stopping
/// criteria.
struct IntervalStats {
    mean: f64,
    half: f64,
    relative: f64,
    met: bool,
}

/// How hyper-sample RNGs are produced: a caller-supplied stream (classic
/// mode), or per-index streams derived from a master seed (checkpoint
/// mode, where iteration `k` is reproducible in isolation).
enum RngDriver<'a> {
    Stream(&'a mut dyn RngCore),
    Derived(u64),
}

/// Derives the seed of hyper-sample `k`'s private RNG stream from the
/// master seed (splitmix-style odd multiplier keeps the streams distinct).
fn derive_seed(master_seed: u64, k: usize) -> u64 {
    master_seed ^ (k as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The iterative maximum-power estimator (paper Figure 4).
///
/// See the [crate-level documentation](crate) for a full example.
#[derive(Debug, Clone)]
pub struct MaxPowerEstimator {
    config: EstimationConfig,
    telemetry: Telemetry,
}

impl MaxPowerEstimator {
    /// Creates an estimator with the given configuration (telemetry
    /// disabled — instrumentation costs nothing until opted into).
    pub fn new(config: EstimationConfig) -> Self {
        MaxPowerEstimator {
            config,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle: the run emits phase spans
    /// (`run`/`hyper_sample`/`simulate`/`fit`/`fallback`/`checkpoint`),
    /// work counters and convergence gauges through it. The handle never
    /// touches the estimation RNG, so a fixed-seed run's results are
    /// bit-identical with telemetry enabled or disabled.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The attached telemetry handle (disabled by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The configuration.
    pub fn config(&self) -> &EstimationConfig {
        &self.config
    }

    /// Runs the iterative procedure against a power source.
    ///
    /// If the source exposes a finite population size and the configuration
    /// does not override it, the finite-population estimator (§3.4) is used
    /// automatically.
    ///
    /// A run that reaches the hyper-sample cap returns its partial
    /// estimate with [`RunStatus::BudgetExhausted`] rather than an error;
    /// use [`MaxPowerEstimate::into_converged`] for the strict contract.
    ///
    /// # Errors
    ///
    /// * [`MaxPowerError::InvalidConfig`] — bad configuration;
    /// * hyper-sample and simulation failures, as filtered by the
    ///   configured [`SamplePolicy`](crate::SamplePolicy) and
    ///   [`FallbackPolicy`](crate::FallbackPolicy).
    pub fn run(
        &self,
        source: &mut dyn PowerSource,
        rng: &mut dyn RngCore,
    ) -> Result<MaxPowerEstimate, MaxPowerError> {
        self.run_inner(source, RngDriver::Stream(rng), None, &mut |_| {})
    }

    /// Runs the procedure with checkpoint/resume support.
    ///
    /// Hyper-sample `k` draws from a private RNG stream derived from
    /// `master_seed` and `k`, so a run resumed from any checkpoint
    /// produces *bit-identical* results to the uninterrupted run with the
    /// same seed. `save` is invoked with a fresh [`Checkpoint`] after
    /// every completed hyper-sample; persist it wherever is convenient
    /// (the `mpe` CLI writes it to the `--checkpoint` path atomically).
    ///
    /// # Errors
    ///
    /// * [`MaxPowerError::CheckpointMismatch`] — `resume` was produced
    ///   under a different configuration, seed or schema version;
    /// * everything [`run`](Self::run) can raise.
    pub fn run_with_checkpoint(
        &self,
        source: &mut dyn PowerSource,
        master_seed: u64,
        resume: Option<&Checkpoint>,
        save: &mut dyn FnMut(&Checkpoint),
    ) -> Result<MaxPowerEstimate, MaxPowerError> {
        self.run_inner(source, RngDriver::Derived(master_seed), resume, save)
    }

    fn run_inner(
        &self,
        source: &mut dyn PowerSource,
        mut driver: RngDriver<'_>,
        resume: Option<&Checkpoint>,
        save: &mut dyn FnMut(&Checkpoint),
    ) -> Result<MaxPowerEstimate, MaxPowerError> {
        self.config.validate()?;
        let mut config = self.config;
        if config.finite_population.is_none() {
            config.finite_population = source.population_size();
        }
        let fingerprint = config_fingerprint(&config);
        let (master_seed, checkpointing) = match driver {
            RngDriver::Stream(_) => (0, false),
            RngDriver::Derived(seed) => (seed, true),
        };

        let mut st = match resume {
            Some(cp) => {
                if !checkpointing {
                    return Err(MaxPowerError::CheckpointMismatch {
                        message: "resume requires the derived-RNG (master seed) mode".to_string(),
                    });
                }
                cp.verify(fingerprint, master_seed)?;
                // Carry the earlier segments' phase durations and counters
                // forward so post-resume telemetry reports the whole run.
                if let Some(summary) = &cp.telemetry {
                    summary.restore_into(&self.telemetry);
                }
                RunState::from_checkpoint(cp)
            }
            None => RunState::new(),
        };

        let _run_span = self.telemetry.span(SpanKind::Run);
        loop {
            let k = st.estimates.len();
            // Stopping decision on the *current* state, so a resumed run
            // that already satisfies its target returns without drawing.
            let stats = self.interval(&config, &st.estimates, &mut st.health)?;
            if let Some(s) = &stats {
                if k >= config.min_hyper_samples && s.met {
                    self.telemetry.flush();
                    return Ok(Self::finish(&config, st, s, true));
                }
                if k >= config.max_hyper_samples {
                    self.telemetry.flush();
                    return Ok(Self::finish(&config, st, s, false));
                }
            }

            let hyper: HyperSample = {
                let _hyper_span = self.telemetry.span(SpanKind::HyperSample);
                match &mut driver {
                    RngDriver::Stream(rng) => {
                        generate_hyper_sample_traced(source, &config, *rng, &self.telemetry)?
                    }
                    RngDriver::Derived(seed) => {
                        let mut hyper_rng = SmallRng::seed_from_u64(derive_seed(*seed, k));
                        generate_hyper_sample_traced(
                            source,
                            &config,
                            &mut hyper_rng,
                            &self.telemetry,
                        )?
                    }
                }
            };
            st.units_used += hyper.units_used;
            st.observed_max = st.observed_max.max(hyper.observed_max);
            st.health.absorb(&hyper.health, hyper.estimator);
            st.estimates.push(hyper.estimate_mw);
            st.estimators.push(hyper.estimator);
            self.telemetry.counter(names::HYPER_SAMPLES, 1);

            let k = st.estimates.len();
            let stats = self.interval(&config, &st.estimates, &mut st.health)?;
            let (mean, relative_half_width) = match &stats {
                Some(s) => (s.mean, s.relative),
                None => (st.estimates.iter().sum::<f64>() / k as f64, f64::INFINITY),
            };
            self.telemetry.gauge(names::RUNNING_MEAN_MW, mean);
            if let Some(s) = &stats {
                self.telemetry.gauge(names::CI_HALF_WIDTH_MW, s.half);
            }
            // Emitted every iteration (infinite before k = 2) — the
            // progress sink repaints on this gauge, the last one per
            // iteration.
            self.telemetry
                .gauge(names::CI_RELATIVE_HALF_WIDTH, relative_half_width);
            st.history.push(EstimateHistoryEntry {
                k,
                mean_mw: mean,
                relative_half_width,
                units_used: st.units_used,
            });
            if checkpointing {
                let _cp_span = self.telemetry.span(SpanKind::Checkpoint);
                let mut cp = st.to_checkpoint(fingerprint, master_seed);
                if self.telemetry.is_enabled() {
                    cp.telemetry =
                        Some(TelemetrySummary::from_snapshot(&self.telemetry.snapshot()));
                }
                save(&cp);
                self.telemetry.counter(names::CHECKPOINT_SAVES, 1);
            }
        }
    }

    /// Computes the t-interval for the current estimates (`None` before
    /// `k = 2`, where the sample variance is undefined), deciding the
    /// stopping criterion and flagging the zero-mean guard.
    fn interval(
        &self,
        config: &EstimationConfig,
        estimates: &[f64],
        health: &mut RunHealth,
    ) -> Result<Option<IntervalStats>, MaxPowerError> {
        let k = estimates.len();
        if k < 2 {
            return Ok(None);
        }
        let mean = estimates.iter().sum::<f64>() / k as f64;
        let s2 = estimates.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / (k as f64 - 1.0);
        let t = StudentT::new((k - 1) as f64)?.two_sided_critical(config.confidence)?;
        let half = t * s2.sqrt() / (k as f64).sqrt();
        let (relative, met) = if mean.abs() <= config.mean_floor_mw {
            // Relative width is undefined at a (near-)zero mean; fall back
            // to the absolute criterion and record that we did.
            health.zero_mean_guard = true;
            (f64::INFINITY, half <= config.absolute_error_mw)
        } else {
            let relative = half / mean.abs();
            (relative, relative <= config.relative_error)
        };
        Ok(Some(IntervalStats {
            mean,
            half,
            relative,
            met,
        }))
    }

    fn finish(
        config: &EstimationConfig,
        st: RunState,
        s: &IntervalStats,
        met_target: bool,
    ) -> MaxPowerEstimate {
        MaxPowerEstimate {
            estimate_mw: s.mean,
            confidence_interval: (s.mean - s.half, s.mean + s.half),
            relative_error: s.relative,
            confidence: config.confidence,
            hyper_samples: st.estimates.len(),
            units_used: st.units_used,
            observed_max_mw: st.observed_max,
            status: st.health.status(met_target),
            health: st.health,
            history: st.history,
            hyper_estimates: st.estimates,
            hyper_estimators: st.estimators,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FnSource;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn weibull_source(alpha: f64, beta: f64, mu: f64) -> impl FnMut(&mut dyn RngCore) -> f64 {
        move |rng: &mut dyn RngCore| {
            let r = rng;
            let u: f64 = r.gen_range(1e-12..1.0f64);
            mu - (-u.ln() / beta).powf(1.0 / alpha)
        }
    }

    #[test]
    fn converges_on_smooth_bounded_source() {
        let mut source = FnSource::new(weibull_source(3.0, 1.0, 10.0));
        let est = MaxPowerEstimator::new(EstimationConfig::default());
        let mut rng = SmallRng::seed_from_u64(1);
        let r = est.run(&mut source, &mut rng).unwrap();
        assert_eq!(r.status, RunStatus::Converged);
        assert!(r.health.is_clean());
        assert!(r.relative_error <= 0.05);
        assert!(
            (r.estimate_mw - 10.0).abs() / 10.0 < 0.10,
            "{}",
            r.estimate_mw
        );
        assert!(r.hyper_samples >= 2);
        assert_eq!(r.units_used, 300 * r.hyper_samples);
        assert_eq!(r.history.len(), r.hyper_samples);
        assert_eq!(r.hyper_estimates.len(), r.hyper_samples);
        assert_eq!(r.hyper_estimators.len(), r.hyper_samples);
        assert!(r.hyper_estimators.iter().all(|&e| e == EstimatorKind::Mle));
        assert!(r.confidence_interval.0 <= r.estimate_mw);
        assert!(r.confidence_interval.1 >= r.estimate_mw);
        assert!(r.observed_max_mw <= 10.0);
    }

    #[test]
    fn coverage_is_near_the_configured_confidence() {
        // Repeat the full procedure many times; the truth (endpoint 10)
        // should fall inside the CI about 90% of the time. This is the
        // paper's Theorem 6 put to the test. Allow generous slack: k is
        // often small, so the normality is approximate.
        let mut hits = 0;
        let runs = 40;
        for seed in 0..runs {
            let mut source = FnSource::new(weibull_source(3.0, 1.0, 10.0));
            let est = MaxPowerEstimator::new(EstimationConfig::default());
            let mut rng = SmallRng::seed_from_u64(100 + seed);
            let r = est.run(&mut source, &mut rng).unwrap();
            // Success criterion from the paper's tables: relative error of
            // the point estimate within the target band.
            if (r.estimate_mw - 10.0).abs() / 10.0 <= 0.05 {
                hits += 1;
            }
        }
        assert!(
            hits as f64 / runs as f64 >= 0.75,
            "only {hits}/{runs} runs within 5%"
        );
    }

    #[test]
    fn history_units_monotone() {
        let mut source = FnSource::new(weibull_source(4.0, 2.0, 5.0));
        let est = MaxPowerEstimator::new(EstimationConfig::default());
        let mut rng = SmallRng::seed_from_u64(2);
        let r = est.run(&mut source, &mut rng).unwrap();
        for w in r.history.windows(2) {
            assert!(w[1].units_used > w[0].units_used);
            assert_eq!(w[1].k, w[0].k + 1);
        }
    }

    #[test]
    fn respects_max_hyper_samples() {
        // An extremely noisy source that cannot converge at 0.1% error with
        // a tiny cap: the partial estimate comes back BudgetExhausted, and
        // into_converged recovers the strict NotConverged contract with the
        // full partial result attached.
        let mut source = FnSource::new(|rng: &mut dyn RngCore| {
            let r = rng;
            r.gen::<f64>().powf(0.2) * 100.0
        });
        let config = EstimationConfig {
            relative_error: 0.001,
            max_hyper_samples: 3,
            ..EstimationConfig::default()
        };
        let est = MaxPowerEstimator::new(config);
        let mut rng = SmallRng::seed_from_u64(3);
        let r = est.run(&mut source, &mut rng).unwrap();
        assert_eq!(r.status, RunStatus::BudgetExhausted);
        assert!(!r.status.met_target());
        assert_eq!(r.hyper_samples, 3);
        match r.into_converged() {
            Err(MaxPowerError::NotConverged {
                hyper_samples,
                observed_max_mw,
                units_used,
                history,
                ..
            }) => {
                assert_eq!(hyper_samples, 3);
                assert!(observed_max_mw > 0.0);
                assert_eq!(units_used, 900);
                assert_eq!(history.len(), 3);
            }
            other => panic!("expected NotConverged, got {other:?}"),
        }
    }

    #[test]
    fn invalid_config_rejected_before_sampling() {
        let config = EstimationConfig {
            confidence: 2.0,
            ..EstimationConfig::default()
        };
        let est = MaxPowerEstimator::new(config);
        let mut source = FnSource::new(|_: &mut dyn RngCore| 1.0);
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(matches!(
            est.run(&mut source, &mut rng),
            Err(MaxPowerError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn finite_population_size_picked_up_from_source() {
        // With a declared finite population the estimator should generally
        // report slightly lower values than the raw-endpoint variant.
        let run = |pop: Option<u64>, seed: u64| {
            let mut source = FnSource::new(weibull_source(3.0, 1.0, 10.0));
            if let Some(v) = pop {
                source = source.with_population_size(v);
            }
            let est = MaxPowerEstimator::new(EstimationConfig::default());
            let mut rng = SmallRng::seed_from_u64(seed);
            est.run(&mut source, &mut rng).unwrap().estimate_mw
        };
        // Average over some seeds to compare the two estimators stably.
        let mean_inf: f64 = (0..10).map(|s| run(None, 50 + s)).sum::<f64>() / 10.0;
        let mean_fin: f64 = (0..10).map(|s| run(Some(1_000), 50 + s)).sum::<f64>() / 10.0;
        assert!(mean_fin <= mean_inf + 1e-9);
    }

    #[test]
    fn tighter_epsilon_costs_more_units() {
        let run = |eps: f64| {
            let mut source = FnSource::new(weibull_source(3.0, 1.0, 10.0));
            let config = EstimationConfig {
                relative_error: eps,
                max_hyper_samples: 2_000,
                ..EstimationConfig::default()
            };
            let est = MaxPowerEstimator::new(config);
            let mut rng = SmallRng::seed_from_u64(9);
            est.run(&mut source, &mut rng).unwrap().units_used
        };
        let loose = run(0.10);
        let tight = run(0.005);
        assert!(tight > loose, "tight {tight} vs loose {loose}");
    }

    #[test]
    fn zero_mean_guard_switches_to_absolute_criterion() {
        // A source symmetric around 0: the running mean hovers at ~0 where
        // the relative criterion divides by ≈0 and can never fire. The
        // guard switches to the absolute criterion so the run still ends,
        // and the switch is recorded in the health record.
        let mut source = FnSource::new(|rng: &mut dyn RngCore| {
            let r = rng;
            r.gen::<f64>() * 2e-10 - 1e-10
        });
        let config = EstimationConfig {
            absolute_error_mw: 1e-6,
            max_hyper_samples: 50,
            ..EstimationConfig::default()
        };
        let est = MaxPowerEstimator::new(config);
        let mut rng = SmallRng::seed_from_u64(11);
        let r = est.run(&mut source, &mut rng).unwrap();
        assert!(r.health.zero_mean_guard);
        assert!(
            r.status.met_target(),
            "guard should let the run stop: {r:?}"
        );
        let width = r.confidence_interval.1 - r.confidence_interval.0;
        assert!(width <= 2e-6, "width {width}");
    }

    #[test]
    fn derived_rng_mode_matches_itself_and_derives_distinct_streams() {
        let run = |seed: u64| {
            let mut source = FnSource::new(weibull_source(3.0, 1.0, 10.0));
            let est = MaxPowerEstimator::new(EstimationConfig::default());
            let mut saves = 0usize;
            let r = est
                .run_with_checkpoint(&mut source, seed, None, &mut |_| saves += 1)
                .unwrap();
            (r.estimate_mw, r.hyper_samples, saves)
        };
        let (a_est, a_k, a_saves) = run(7);
        let (b_est, b_k, b_saves) = run(7);
        assert_eq!(a_est, b_est);
        assert_eq!(a_k, b_k);
        assert_eq!(a_saves, a_k, "one checkpoint per hyper-sample");
        assert_eq!(b_saves, b_k);
        let (c_est, _, _) = run(8);
        assert_ne!(a_est, c_est, "different master seeds give different runs");
        assert_ne!(derive_seed(7, 0), derive_seed(7, 1));
        assert_ne!(derive_seed(7, 0), derive_seed(8, 0));
    }

    #[test]
    fn resume_from_any_checkpoint_matches_uninterrupted_run() {
        let make_source = || FnSource::new(weibull_source(3.0, 1.0, 10.0));
        let est = MaxPowerEstimator::new(EstimationConfig::default());
        // Uninterrupted run, recording every checkpoint.
        let mut checkpoints = Vec::new();
        let mut source = make_source();
        let full = est
            .run_with_checkpoint(&mut source, 21, None, &mut |cp| {
                checkpoints.push(cp.clone())
            })
            .unwrap();
        assert!(full.hyper_samples >= 2);
        // "Kill" the run after each prefix and resume: identical results.
        for cp in &checkpoints {
            let mut source = make_source();
            let resumed = est
                .run_with_checkpoint(&mut source, 21, Some(cp), &mut |_| {})
                .unwrap();
            assert_eq!(resumed.estimate_mw, full.estimate_mw);
            assert_eq!(resumed.hyper_samples, full.hyper_samples);
            assert_eq!(resumed.units_used, full.units_used);
            assert_eq!(resumed.hyper_estimates, full.hyper_estimates);
            assert_eq!(resumed.status, full.status);
        }
        // Resuming from the final checkpoint returns without new draws.
        let last = checkpoints.last().unwrap();
        let mut source = make_source();
        let mut extra_saves = 0usize;
        let resumed = est
            .run_with_checkpoint(&mut source, 21, Some(last), &mut |_| extra_saves += 1)
            .unwrap();
        assert_eq!(extra_saves, 0);
        assert_eq!(resumed.estimate_mw, full.estimate_mw);
    }

    #[test]
    fn resume_rejects_wrong_seed_or_config() {
        let est = MaxPowerEstimator::new(EstimationConfig::default());
        let mut source = FnSource::new(weibull_source(3.0, 1.0, 10.0));
        let mut checkpoints = Vec::new();
        est.run_with_checkpoint(&mut source, 5, None, &mut |cp| checkpoints.push(cp.clone()))
            .unwrap();
        let cp = checkpoints.first().unwrap();
        // Wrong seed.
        let mut source = FnSource::new(weibull_source(3.0, 1.0, 10.0));
        assert!(matches!(
            est.run_with_checkpoint(&mut source, 6, Some(cp), &mut |_| {}),
            Err(MaxPowerError::CheckpointMismatch { .. })
        ));
        // Wrong config.
        let config = EstimationConfig {
            relative_error: 0.01,
            ..EstimationConfig::default()
        };
        let strict = MaxPowerEstimator::new(config);
        let mut source = FnSource::new(weibull_source(3.0, 1.0, 10.0));
        assert!(matches!(
            strict.run_with_checkpoint(&mut source, 5, Some(cp), &mut |_| {}),
            Err(MaxPowerError::CheckpointMismatch { .. })
        ));
    }
}
