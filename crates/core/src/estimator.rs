//! The iterative estimation procedure — the paper's Figure 4 and
//! Theorems 5–6.
//!
//! Hyper-samples `P̂_{i,MAX}` are (approximately) normal around the true
//! maximum `ω(F)` with variance `σ_μ²/m`. The engine accumulates them,
//! forms the Student-t confidence interval
//! `P̄ ± t_{l,k−1}·s/√k` (Eqn 3.8), and stops when the relative half-width
//! `t·s/(√k·P̄)` falls below the requested `ε` — delivering, for the first
//! time among maximum-power estimators, *any* user-specified error and
//! confidence level.

use rand::RngCore;

use mpe_stats::dist::StudentT;

use crate::config::EstimationConfig;
use crate::error::MaxPowerError;
use crate::hyper::{generate_hyper_sample, HyperSample};
use crate::source::PowerSource;

/// One row of the convergence history: the state after each hyper-sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateHistoryEntry {
    /// Hyper-samples accumulated so far (`k`).
    pub k: usize,
    /// Running mean estimate `P̄` (mW).
    pub mean_mw: f64,
    /// Relative half-width of the t-interval (undefined before `k = 2`;
    /// reported as infinity for `k < 2`).
    pub relative_half_width: f64,
    /// Cumulative vector pairs consumed.
    pub units_used: usize,
}

/// The final estimate with its confidence statement.
#[derive(Debug, Clone)]
pub struct MaxPowerEstimate {
    /// The maximum-power estimate `P̄` (mW).
    pub estimate_mw: f64,
    /// The confidence interval at the configured level (mW).
    pub confidence_interval: (f64, f64),
    /// Achieved relative half-width (`≤ ε` when converged).
    pub relative_error: f64,
    /// The configured confidence level.
    pub confidence: f64,
    /// Hyper-samples consumed (`k`).
    pub hyper_samples: usize,
    /// Total vector pairs simulated — the paper's efficiency metric.
    pub units_used: usize,
    /// Largest single unit power observed anywhere in the run (a hard
    /// lower bound on the true maximum).
    pub observed_max_mw: f64,
    /// Per-iteration convergence history.
    pub history: Vec<EstimateHistoryEntry>,
    /// The individual hyper-sample estimates.
    pub hyper_estimates: Vec<f64>,
}

/// The iterative maximum-power estimator (paper Figure 4).
///
/// See the [crate-level documentation](crate) for a full example.
#[derive(Debug, Clone)]
pub struct MaxPowerEstimator {
    config: EstimationConfig,
}

impl MaxPowerEstimator {
    /// Creates an estimator with the given configuration.
    pub fn new(config: EstimationConfig) -> Self {
        MaxPowerEstimator { config }
    }

    /// The configuration.
    pub fn config(&self) -> &EstimationConfig {
        &self.config
    }

    /// Runs the iterative procedure against a power source.
    ///
    /// If the source exposes a finite population size and the configuration
    /// does not override it, the finite-population estimator (§3.4) is used
    /// automatically.
    ///
    /// # Errors
    ///
    /// * [`MaxPowerError::InvalidConfig`] — bad configuration;
    /// * [`MaxPowerError::NotConverged`] — hyper-sample cap reached before
    ///   the target error; the message carries the best estimate;
    /// * hyper-sample and simulation failures.
    pub fn run(
        &self,
        source: &mut dyn PowerSource,
        rng: &mut dyn RngCore,
    ) -> Result<MaxPowerEstimate, MaxPowerError> {
        self.config.validate()?;
        let mut config = self.config;
        if config.finite_population.is_none() {
            config.finite_population = source.population_size();
        }

        let mut estimates: Vec<f64> = Vec::new();
        let mut history: Vec<EstimateHistoryEntry> = Vec::new();
        let mut units_used = 0usize;
        let mut observed_max = f64::NEG_INFINITY;

        loop {
            let hyper: HyperSample = generate_hyper_sample(source, &config, rng)?;
            units_used += hyper.units_used;
            observed_max = observed_max.max(hyper.observed_max);
            estimates.push(hyper.estimate_mw);
            let k = estimates.len();
            let mean = estimates.iter().sum::<f64>() / k as f64;

            let relative_half_width = if k >= 2 {
                let s2 = estimates
                    .iter()
                    .map(|e| (e - mean).powi(2))
                    .sum::<f64>()
                    / (k as f64 - 1.0);
                let t = StudentT::new((k - 1) as f64)?
                    .two_sided_critical(config.confidence)?;
                let half = t * s2.sqrt() / (k as f64).sqrt();
                if mean.abs() > 0.0 {
                    half / mean.abs()
                } else {
                    f64::INFINITY
                }
            } else {
                f64::INFINITY
            };
            history.push(EstimateHistoryEntry {
                k,
                mean_mw: mean,
                relative_half_width,
                units_used,
            });

            if k >= config.min_hyper_samples && relative_half_width <= config.relative_error {
                let half = relative_half_width * mean.abs();
                return Ok(MaxPowerEstimate {
                    estimate_mw: mean,
                    confidence_interval: (mean - half, mean + half),
                    relative_error: relative_half_width,
                    confidence: config.confidence,
                    hyper_samples: k,
                    units_used,
                    observed_max_mw: observed_max,
                    history,
                    hyper_estimates: estimates,
                });
            }
            if k >= config.max_hyper_samples {
                return Err(MaxPowerError::NotConverged {
                    estimate_mw: mean,
                    achieved_relative_error: relative_half_width,
                    hyper_samples: k,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FnSource;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn weibull_source(alpha: f64, beta: f64, mu: f64) -> impl FnMut(&mut dyn RngCore) -> f64 {
        move |rng: &mut dyn RngCore| {
            let r = rng;
            let u: f64 = r.gen_range(1e-12..1.0f64);
            mu - (-u.ln() / beta).powf(1.0 / alpha)
        }
    }

    #[test]
    fn converges_on_smooth_bounded_source() {
        let mut source = FnSource::new(weibull_source(3.0, 1.0, 10.0));
        let est = MaxPowerEstimator::new(EstimationConfig::default());
        let mut rng = SmallRng::seed_from_u64(1);
        let r = est.run(&mut source, &mut rng).unwrap();
        assert!(r.relative_error <= 0.05);
        assert!((r.estimate_mw - 10.0).abs() / 10.0 < 0.10, "{}", r.estimate_mw);
        assert!(r.hyper_samples >= 2);
        assert_eq!(r.units_used, 300 * r.hyper_samples);
        assert_eq!(r.history.len(), r.hyper_samples);
        assert_eq!(r.hyper_estimates.len(), r.hyper_samples);
        assert!(r.confidence_interval.0 <= r.estimate_mw);
        assert!(r.confidence_interval.1 >= r.estimate_mw);
        assert!(r.observed_max_mw <= 10.0);
    }

    #[test]
    fn coverage_is_near_the_configured_confidence() {
        // Repeat the full procedure many times; the truth (endpoint 10)
        // should fall inside the CI about 90% of the time. This is the
        // paper's Theorem 6 put to the test. Allow generous slack: k is
        // often small, so the normality is approximate.
        let mut hits = 0;
        let runs = 40;
        for seed in 0..runs {
            let mut source = FnSource::new(weibull_source(3.0, 1.0, 10.0));
            let est = MaxPowerEstimator::new(EstimationConfig::default());
            let mut rng = SmallRng::seed_from_u64(100 + seed);
            let r = est.run(&mut source, &mut rng).unwrap();
            // Success criterion from the paper's tables: relative error of
            // the point estimate within the target band.
            if (r.estimate_mw - 10.0).abs() / 10.0 <= 0.05 {
                hits += 1;
            }
        }
        assert!(
            hits as f64 / runs as f64 >= 0.75,
            "only {hits}/{runs} runs within 5%"
        );
    }

    #[test]
    fn history_units_monotone() {
        let mut source = FnSource::new(weibull_source(4.0, 2.0, 5.0));
        let est = MaxPowerEstimator::new(EstimationConfig::default());
        let mut rng = SmallRng::seed_from_u64(2);
        let r = est.run(&mut source, &mut rng).unwrap();
        for w in r.history.windows(2) {
            assert!(w[1].units_used > w[0].units_used);
            assert_eq!(w[1].k, w[0].k + 1);
        }
    }

    #[test]
    fn respects_max_hyper_samples() {
        // An extremely noisy source that cannot converge at 0.1% error with
        // a tiny cap must return NotConverged.
        let mut source = FnSource::new(|rng: &mut dyn RngCore| {
            let r = rng;
            r.gen::<f64>().powf(0.2) * 100.0
        });
        let mut config = EstimationConfig::default();
        config.relative_error = 0.001;
        config.max_hyper_samples = 3;
        let est = MaxPowerEstimator::new(config);
        let mut rng = SmallRng::seed_from_u64(3);
        match est.run(&mut source, &mut rng) {
            Err(MaxPowerError::NotConverged { hyper_samples, .. }) => {
                assert_eq!(hyper_samples, 3)
            }
            other => panic!("expected NotConverged, got {other:?}"),
        }
    }

    #[test]
    fn invalid_config_rejected_before_sampling() {
        let mut config = EstimationConfig::default();
        config.confidence = 2.0;
        let est = MaxPowerEstimator::new(config);
        let mut source = FnSource::new(|_: &mut dyn RngCore| 1.0);
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(matches!(
            est.run(&mut source, &mut rng),
            Err(MaxPowerError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn finite_population_size_picked_up_from_source() {
        // With a declared finite population the estimator should generally
        // report slightly lower values than the raw-endpoint variant.
        let run = |pop: Option<u64>, seed: u64| {
            let mut source = FnSource::new(weibull_source(3.0, 1.0, 10.0));
            if let Some(v) = pop {
                source = source.with_population_size(v);
            }
            let est = MaxPowerEstimator::new(EstimationConfig::default());
            let mut rng = SmallRng::seed_from_u64(seed);
            est.run(&mut source, &mut rng).unwrap().estimate_mw
        };
        // Average over some seeds to compare the two estimators stably.
        let mean_inf: f64 = (0..10).map(|s| run(None, 50 + s)).sum::<f64>() / 10.0;
        let mean_fin: f64 = (0..10).map(|s| run(Some(1_000), 50 + s)).sum::<f64>() / 10.0;
        assert!(mean_fin <= mean_inf + 1e-9);
    }

    #[test]
    fn tighter_epsilon_costs_more_units() {
        let run = |eps: f64| {
            let mut source = FnSource::new(weibull_source(3.0, 1.0, 10.0));
            let mut config = EstimationConfig::default();
            config.relative_error = eps;
            config.max_hyper_samples = 2_000;
            let est = MaxPowerEstimator::new(config);
            let mut rng = SmallRng::seed_from_u64(9);
            est.run(&mut source, &mut rng).unwrap().units_used
        };
        let loose = run(0.10);
        let tight = run(0.005);
        assert!(tight > loose, "tight {tight} vs loose {loose}");
    }
}
