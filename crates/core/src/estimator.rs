//! The iterative estimation procedure — the paper's Figure 4 and
//! Theorems 5–6.
//!
//! Hyper-samples `P̂_{i,MAX}` are (approximately) normal around the true
//! maximum `ω(F)` with variance `σ_μ²/m`. The engine accumulates them,
//! forms the Student-t confidence interval
//! `P̄ ± t_{l,k−1}·s/√k` (Eqn 3.8), and stops when the relative half-width
//! `t·s/(√k·P̄)` falls below the requested `ε` — delivering, for the first
//! time among maximum-power estimators, *any* user-specified error and
//! confidence level.
//!
//! This module owns the result vocabulary ([`MaxPowerEstimate`],
//! [`EstimateHistoryEntry`]); runs are driven through the session API
//! ([`EstimatorBuilder`](crate::EstimatorBuilder) →
//! [`Session::run`](crate::Session::run)).
//!
//! Two robustness departures from the idealized loop:
//!
//! * Hitting the hyper-sample cap is **not an error**: the run returns its
//!   best partial estimate tagged [`RunStatus::BudgetExhausted`]. Callers
//!   that require convergence use
//!   [`MaxPowerEstimate::into_converged`].
//! * When the running mean is within
//!   [`mean_floor_mw`](crate::EstimationConfig::mean_floor_mw) of zero the
//!   relative criterion divides by ≈0 and can never fire; the stopping
//!   rule switches to the absolute criterion
//!   [`absolute_error_mw`](crate::EstimationConfig::absolute_error_mw) and
//!   flags [`RunHealth::zero_mean_guard`].

use crate::error::MaxPowerError;
use crate::health::{EstimatorKind, RunHealth, RunStatus};

/// One row of the convergence history: the state after each hyper-sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateHistoryEntry {
    /// Hyper-samples accumulated so far (`k`).
    pub k: usize,
    /// Running mean estimate `P̄` (mW).
    pub mean_mw: f64,
    /// Relative half-width of the t-interval (undefined before `k = 2` and
    /// under the zero-mean guard; reported as infinity there).
    pub relative_half_width: f64,
    /// Cumulative vector pairs consumed.
    pub units_used: usize,
}

/// The final estimate with its confidence statement and health record.
#[derive(Debug, Clone)]
pub struct MaxPowerEstimate {
    /// The maximum-power estimate `P̄` (mW).
    pub estimate_mw: f64,
    /// The confidence interval at the configured level (mW).
    pub confidence_interval: (f64, f64),
    /// Achieved relative half-width (`≤ ε` when converged; infinite under
    /// the zero-mean guard).
    pub relative_error: f64,
    /// The configured confidence level.
    pub confidence: f64,
    /// Hyper-samples consumed (`k`).
    pub hyper_samples: usize,
    /// Total vector pairs simulated — the paper's efficiency metric.
    pub units_used: usize,
    /// Largest single unit power observed anywhere in the run (a hard
    /// lower bound on the true maximum).
    pub observed_max_mw: f64,
    /// How the run ended: converged, degraded-but-converged, or capped.
    pub status: RunStatus,
    /// Aggregated fault/fallback/guard counters for the whole run.
    pub health: RunHealth,
    /// Per-iteration convergence history.
    pub history: Vec<EstimateHistoryEntry>,
    /// The individual hyper-sample estimates.
    pub hyper_estimates: Vec<f64>,
    /// Which estimator produced each hyper-sample (parallel to
    /// [`hyper_estimates`](Self::hyper_estimates)).
    pub hyper_estimators: Vec<EstimatorKind>,
    /// Per-hyper-sample estimator audit trail (parallel to
    /// [`hyper_estimates`](Self::hyper_estimates)): rung, reason code and
    /// goodness-of-fit summaries for every committed fit.
    pub fit_diagnostics: Vec<crate::health::FitDiagnostics>,
}

impl MaxPowerEstimate {
    /// Converts a capped run into the classic [`MaxPowerError::NotConverged`]
    /// error, for callers that require the error/confidence contract to
    /// have been met. Converged and degraded-but-converged runs pass
    /// through unchanged.
    ///
    /// # Errors
    ///
    /// [`MaxPowerError::NotConverged`] carrying the full partial result
    /// when the run ended [`RunStatus::BudgetExhausted`].
    pub fn into_converged(self) -> Result<MaxPowerEstimate, MaxPowerError> {
        if self.status.met_target() {
            Ok(self)
        } else {
            Err(MaxPowerError::NotConverged {
                estimate_mw: self.estimate_mw,
                achieved_relative_error: self.relative_error,
                hyper_samples: self.hyper_samples,
                observed_max_mw: self.observed_max_mw,
                units_used: self.units_used,
                history: self.history,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    // End-to-end coverage of the estimation loop through the session API:
    // convergence, coverage, budgets, guards, and the derived-RNG
    // checkpoint/resume contract.

    use super::*;
    use crate::config::EstimationConfig;
    use crate::engine::derive_seed;
    use crate::session::{EstimatorBuilder, RunOptions, Session};
    use crate::source::FnSource;
    use rand::{Rng, RngCore};

    fn weibull_source(
        alpha: f64,
        beta: f64,
        mu: f64,
    ) -> FnSource<impl FnMut(&mut dyn RngCore) -> f64 + Clone + Send> {
        FnSource::new(move |rng: &mut dyn RngCore| {
            let u: f64 = rng.gen_range(1e-12..1.0f64);
            mu - (-u.ln() / beta).powf(1.0 / alpha)
        })
    }

    fn session() -> Session {
        EstimatorBuilder::new(EstimationConfig::default()).build()
    }

    #[test]
    fn converges_on_smooth_bounded_source() {
        let source = weibull_source(3.0, 1.0, 10.0);
        let r = session()
            .run(&source, RunOptions::default().seeded(1))
            .unwrap();
        assert_eq!(r.status, RunStatus::Converged);
        assert!(r.health.is_clean());
        assert!(r.relative_error <= 0.05);
        assert!(
            (r.estimate_mw - 10.0).abs() / 10.0 < 0.10,
            "{}",
            r.estimate_mw
        );
        assert!(r.hyper_samples >= 2);
        assert_eq!(r.units_used, 300 * r.hyper_samples);
        assert_eq!(r.history.len(), r.hyper_samples);
        assert_eq!(r.hyper_estimates.len(), r.hyper_samples);
        assert_eq!(r.hyper_estimators.len(), r.hyper_samples);
        assert!(r.hyper_estimators.iter().all(|&e| e == EstimatorKind::Mle));
        assert!(r.confidence_interval.0 <= r.estimate_mw);
        assert!(r.confidence_interval.1 >= r.estimate_mw);
        assert!(r.observed_max_mw <= 10.0);
    }

    #[test]
    fn coverage_is_near_the_configured_confidence() {
        // Repeat the full procedure many times; the truth (endpoint 10)
        // should fall inside the CI about 90% of the time. This is the
        // paper's Theorem 6 put to the test. Allow generous slack: k is
        // often small, so the normality is approximate.
        let mut hits = 0;
        let runs = 40;
        for seed in 0..runs {
            let source = weibull_source(3.0, 1.0, 10.0);
            let r = session()
                .run(&source, RunOptions::default().seeded(100 + seed))
                .unwrap();
            // Success criterion from the paper's tables: relative error of
            // the point estimate within the target band.
            if (r.estimate_mw - 10.0).abs() / 10.0 <= 0.05 {
                hits += 1;
            }
        }
        assert!(
            hits as f64 / runs as f64 >= 0.75,
            "only {hits}/{runs} runs within 5%"
        );
    }

    #[test]
    fn history_units_monotone() {
        let source = weibull_source(4.0, 2.0, 5.0);
        let r = session()
            .run(&source, RunOptions::default().seeded(2))
            .unwrap();
        for w in r.history.windows(2) {
            assert!(w[1].units_used > w[0].units_used);
            assert_eq!(w[1].k, w[0].k + 1);
        }
    }

    #[test]
    fn respects_max_hyper_samples() {
        // An extremely noisy source that cannot converge at a vanishing
        // error target with a tiny cap: the partial estimate comes back
        // BudgetExhausted, and into_converged recovers the strict
        // NotConverged contract with the full partial result attached.
        let source = FnSource::new(|rng: &mut dyn RngCore| {
            let r = rng;
            r.gen::<f64>().powf(0.2) * 100.0
        });
        let config = EstimationConfig {
            relative_error: 1e-12,
            max_hyper_samples: 3,
            ..EstimationConfig::default()
        };
        let session = EstimatorBuilder::new(config).build();
        let r = session
            .run(&source, RunOptions::default().seeded(3))
            .unwrap();
        assert_eq!(r.status, RunStatus::BudgetExhausted);
        assert!(!r.status.met_target());
        assert_eq!(r.hyper_samples, 3);
        match r.into_converged() {
            Err(MaxPowerError::NotConverged {
                hyper_samples,
                observed_max_mw,
                units_used,
                history,
                ..
            }) => {
                assert_eq!(hyper_samples, 3);
                assert!(observed_max_mw > 0.0);
                assert_eq!(units_used, 900);
                assert_eq!(history.len(), 3);
            }
            other => panic!("expected NotConverged, got {other:?}"),
        }
    }

    #[test]
    fn invalid_config_rejected_before_sampling() {
        let config = EstimationConfig {
            confidence: 2.0,
            ..EstimationConfig::default()
        };
        let session = EstimatorBuilder::new(config).build();
        let source = FnSource::new(|_: &mut dyn RngCore| 1.0);
        assert!(matches!(
            session.run(&source, RunOptions::default().seeded(4)),
            Err(MaxPowerError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn finite_population_size_picked_up_from_source() {
        // With a declared finite population the estimator should generally
        // report slightly lower values than the raw-endpoint variant.
        let run = |pop: Option<u64>, seed: u64| {
            let mut source = weibull_source(3.0, 1.0, 10.0);
            if let Some(v) = pop {
                source = source.with_population_size(v);
            }
            session()
                .run(&source, RunOptions::default().seeded(seed))
                .unwrap()
                .estimate_mw
        };
        // Average over some seeds to compare the two estimators stably.
        let mean_inf: f64 = (0..10).map(|s| run(None, 50 + s)).sum::<f64>() / 10.0;
        let mean_fin: f64 = (0..10).map(|s| run(Some(1_000), 50 + s)).sum::<f64>() / 10.0;
        assert!(mean_fin <= mean_inf + 1e-9);
    }

    #[test]
    fn tighter_epsilon_costs_more_units() {
        let run = |eps: f64| {
            let source = weibull_source(3.0, 1.0, 10.0);
            let config = EstimationConfig {
                relative_error: eps,
                max_hyper_samples: 2_000,
                ..EstimationConfig::default()
            };
            EstimatorBuilder::new(config)
                .build()
                .run(&source, RunOptions::default().seeded(9))
                .unwrap()
                .units_used
        };
        let loose = run(0.10);
        let tight = run(0.005);
        assert!(tight > loose, "tight {tight} vs loose {loose}");
    }

    #[test]
    fn zero_mean_guard_switches_to_absolute_criterion() {
        // A source symmetric around 0: the running mean hovers at ~0 where
        // the relative criterion divides by ≈0 and can never fire. The
        // guard switches to the absolute criterion so the run still ends,
        // and the switch is recorded in the health record.
        let source = FnSource::new(|rng: &mut dyn RngCore| {
            let r = rng;
            r.gen::<f64>() * 2e-10 - 1e-10
        });
        let config = EstimationConfig {
            absolute_error_mw: 1e-6,
            max_hyper_samples: 50,
            ..EstimationConfig::default()
        };
        let r = EstimatorBuilder::new(config)
            .build()
            .run(&source, RunOptions::default().seeded(11))
            .unwrap();
        assert!(r.health.zero_mean_guard);
        assert!(
            r.status.met_target(),
            "guard should let the run stop: {r:?}"
        );
        let width = r.confidence_interval.1 - r.confidence_interval.0;
        assert!(width <= 2e-6, "width {width}");
    }

    #[test]
    fn seeded_runs_reproduce_and_derive_distinct_streams() {
        let run = |seed: u64| {
            let source = weibull_source(3.0, 1.0, 10.0);
            let mut saves = 0usize;
            let mut save = |_: &crate::checkpoint::Checkpoint| saves += 1;
            let r = session()
                .run(
                    &source,
                    RunOptions::default().seeded(seed).save_with(&mut save),
                )
                .unwrap();
            (r.estimate_mw, r.hyper_samples, saves)
        };
        let (a_est, a_k, a_saves) = run(7);
        let (b_est, b_k, b_saves) = run(7);
        assert_eq!(a_est, b_est);
        assert_eq!(a_k, b_k);
        assert_eq!(a_saves, a_k, "one checkpoint per hyper-sample");
        assert_eq!(b_saves, b_k);
        let (c_est, _, _) = run(8);
        assert_ne!(a_est, c_est, "different master seeds give different runs");
        assert_ne!(derive_seed(7, 0), derive_seed(7, 1));
        assert_ne!(derive_seed(7, 0), derive_seed(8, 0));
    }

    #[test]
    fn resume_from_any_checkpoint_matches_uninterrupted_run() {
        let source = weibull_source(3.0, 1.0, 10.0);
        // Uninterrupted run, recording every checkpoint.
        let mut checkpoints = Vec::new();
        let mut record = |cp: &crate::checkpoint::Checkpoint| checkpoints.push(cp.clone());
        let full = session()
            .run(
                &source,
                RunOptions::default().seeded(21).save_with(&mut record),
            )
            .unwrap();
        assert!(full.hyper_samples >= 2);
        // "Kill" the run after each prefix and resume: identical results.
        for cp in &checkpoints {
            let resumed = session()
                .run(&source, RunOptions::default().seeded(21).resume(cp))
                .unwrap();
            assert_eq!(resumed.estimate_mw, full.estimate_mw);
            assert_eq!(resumed.hyper_samples, full.hyper_samples);
            assert_eq!(resumed.units_used, full.units_used);
            assert_eq!(resumed.hyper_estimates, full.hyper_estimates);
            assert_eq!(resumed.status, full.status);
        }
        // Resuming from the final checkpoint returns without new draws.
        let last = checkpoints.last().unwrap();
        let mut extra_saves = 0usize;
        let mut count = |_: &crate::checkpoint::Checkpoint| extra_saves += 1;
        let resumed = session()
            .run(
                &source,
                RunOptions::default()
                    .seeded(21)
                    .resume(last)
                    .save_with(&mut count),
            )
            .unwrap();
        assert_eq!(extra_saves, 0);
        assert_eq!(resumed.estimate_mw, full.estimate_mw);
    }

    #[test]
    fn resume_rejects_wrong_seed_or_config() {
        let source = weibull_source(3.0, 1.0, 10.0);
        let mut checkpoints = Vec::new();
        let mut record = |cp: &crate::checkpoint::Checkpoint| checkpoints.push(cp.clone());
        session()
            .run(
                &source,
                RunOptions::default().seeded(5).save_with(&mut record),
            )
            .unwrap();
        let cp = checkpoints.first().unwrap();
        // Wrong seed.
        assert!(matches!(
            session().run(&source, RunOptions::default().seeded(6).resume(cp)),
            Err(MaxPowerError::CheckpointMismatch { .. })
        ));
        // Wrong config.
        let config = EstimationConfig {
            relative_error: 0.01,
            ..EstimationConfig::default()
        };
        let strict = EstimatorBuilder::new(config).build();
        assert!(matches!(
            strict.run(&source, RunOptions::default().seeded(5).resume(cp)),
            Err(MaxPowerError::CheckpointMismatch { .. })
        ));
    }
}
