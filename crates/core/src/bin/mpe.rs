//! `mpe` — the maximum power estimation command-line tool.
//!
//! Subcommands:
//!
//! * `estimate` — maximum power to a given error/confidence (the paper's
//!   headline flow);
//! * `average`  — average power (Monte-Carlo companion estimator);
//! * `delay`    — maximum exercisable circuit delay (the paper's proposed
//!   extension);
//! * `info`     — circuit structure report;
//! * `trace`    — capture one vector pair's waveform as a VCD on stdout,
//!   or analyze a JSONL run trace (`trace summarize|diff|export-convergence`);
//! * `generate` — emit a synthetic ISCAS85 stand-in as `.bench` text;
//! * `serve`    — a long-lived estimation daemon with an HTTP/JSON job API
//!   (see `maxpower::serve`).
//!
//! Circuits come from `--circuit <ISCAS85 name>` (deterministic synthetic
//! stand-in) or `--bench <file>` (a real netlist). Run `mpe help` for all
//! flags.

use std::num::NonZeroUsize;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use maxpower::checkpoint::{backup_path, load_with_recovery, save_atomic, CheckpointSource};
use maxpower::serve::{jobs::kernel_usage_error, Server, ServerConfig};
use maxpower::telemetry::{
    diff_summaries, forward, names, replay, ForwardHandle, JsonlSink, ProgressSink, SpanKind,
    SubscriberSink, Telemetry, TraceSummary, DEFAULT_SUBSCRIBER_CAPACITY,
};
use maxpower::{
    estimate_average_power, AppError, Checkpoint, DelaySource, EstimateReport, EstimationConfig,
    EstimatorBuilder, MaxPowerEstimate, PowerSourceFactory, RunBudget, RunOptions, RunStatus,
    SamplePolicy, Session, SimulatorSource,
};
use mpe_netlist::{bench_format, generate, Circuit, Iscas85};
use mpe_sim::{DelayModel, KernelMode, PowerConfig};
use mpe_vectors::PairGenerator;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const HELP: &str = "\
mpe — statistical maximum power estimation (Qiu/Wu/Pedram, DAC 1998)

USAGE:
    mpe <estimate|average|delay|info|trace|generate|serve> [flags]

CIRCUIT SELECTION (all subcommands):
    --circuit NAME      ISCAS85 profile (C432, C880, ..., C7552), synthetic stand-in
    --bench FILE        parse a real .bench netlist instead
    --verilog FILE      parse a structural Verilog netlist instead
    --gen-seed S        seed for the synthetic stand-in (default 7)

ESTIMATION (estimate / delay):
    --epsilon E         target relative error (default 0.05)
    --confidence L      confidence level (default 0.90)
    --population V      finite vector-pair space size (default 160000; 0 = infinite)
    --seed S            estimation RNG seed (default 42)
    --workers N         worker threads for hyper-sample generation (default 1);
                        results are bit-identical for every N
    --delay-model M     zero | unit | fanout (default unit)
    --kernel K          auto | scalar | packed | packed128 simulation kernel
                        (default auto = packed; the packed kernels settle 64
                        or 128 vector pairs per word-level sweep under every
                        delay model and are bit-identical to scalar)
    --activity A        per-line input switching activity in [0,1] (default: uniform pairs)
    --json              print the result as JSON instead of text

RESILIENCE (estimate / delay):
    --sample-policy P   fail | skip[:CAP] | retry[:N] — reaction to source errors and
                        invalid readings (default fail; skip cap 1000, retry cap 8)
    --checkpoint FILE   save estimator state after every hyper-sample (atomic
                        write + fsync, previous generation rotated to FILE.bak,
                        content-checksummed) and resume from FILE if it exists
                        (same seed + config required; falls back to FILE.bak
                        when FILE is torn or corrupt)

SUPERVISION (estimate / delay):
    --deadline SECS     wall-clock budget; on expiry the run stops gracefully with
                        a valid partial result (status INTERRUPTED)
    --hyper-budget N    stop gracefully after committing N more hyper-samples
    --stall-timeout S   flag parallel workers whose heartbeat is older than S
                        seconds (observability only; the estimate is unaffected)
    Ctrl-C / SIGTERM    first signal stops gracefully (commits the in-flight
                        prefix, saves the final checkpoint); a second aborts

OBSERVABILITY (estimate / delay):
    --trace-file FILE   write a structured JSONL event trace (schema v2) to FILE
    --metrics           print Prometheus-style metrics after the run, including
                        per-phase latency histograms and p50/p95/p99 (on stdout,
                        or stderr when --json so stdout stays machine-readable)
    --progress          live convergence progress line on stderr (fed through a
                        bounded subscriber buffer; a slow terminal can never
                        stall the run — overflow events are counted and dropped)
    --live MODE         stream run events live on stdout; MODE must be `ndjson`
                        (one schema-v2 JSON event per line). Incompatible with
                        --json. The drop count is reported on stderr.

AVERAGE (average):
    same flags; --epsilon defaults to 0.02

SERVING (serve):
    --addr A:P          bind address (default 127.0.0.1:0 = ephemeral port)
    --addr-file FILE    write the bound address to FILE once listening
    --runners N         estimation runner threads (default 2)
    --http-threads N    HTTP worker threads (default 4)
    --queue-depth N     bounded job queue; beyond it submissions get 429 (default 16)
    --spool DIR         crash-safe job state: specs, rolling checkpoints and
                        reports persist here; a restarted daemon re-registers
                        finished jobs and resumes unfinished ones
    Endpoints: POST /jobs, GET /jobs/:id[/report|/events], POST /jobs/:id/cancel,
    GET /healthz, GET /stats, POST /shutdown. SIGTERM drains gracefully.

TRACE (trace):
    --seed S            seed for the random vector pair (default 42)
    --delay-model M     zero | unit | fanout (default unit)

TRACE ANALYSIS (trace summarize|diff|export-convergence):
    trace summarize FILE        validate a JSONL run trace (schema v1/v2) and
                                print phase totals, latency quantiles, counters
                                and the estimator audit trail
    trace diff A B              compare the deterministic content of two traces
                                (counters, span counts, gauges, audit trail);
                                timings are ignored; exits non-zero on drift
    trace export-convergence F  emit the convergence history as CSV on stdout

EXAMPLES:
    mpe estimate --circuit C3540
    mpe estimate --bench c880.bench --activity 0.3 --epsilon 0.03 --json
    mpe estimate --circuit C7552 --checkpoint c7552.ckpt --sample-policy skip
    mpe delay --circuit C6288
    mpe estimate --circuit C432 --trace-file c432.jsonl --metrics --progress
    mpe estimate --circuit C432 --live ndjson > events.jsonl
    mpe trace summarize c432.jsonl
    mpe trace diff run_a.jsonl run_b.jsonl
    mpe generate --circuit C432 > c432_standin.bench
    mpe serve --addr 127.0.0.1:8080 --spool /var/lib/mpe/spool
";

/// Every human-facing status, warning and diagnostic line goes through
/// this one helper, onto **stderr** — stdout carries only machine output
/// (`--json` reports, metrics expositions, VCD dumps, `.bench` text) and
/// the headline result lines.
macro_rules! status {
    ($($arg:tt)*) => {
        eprintln!($($arg)*)
    };
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            // `AppError`'s Display (`error[kind]: message`) and exit-code
            // mapping are the same structured failure surface `mpe serve`
            // renders as HTTP status + JSON body, so a failure reads the
            // same in a terminal and in a client.
            status!("{err}");
            ExitCode::from(err.kind.exit_code())
        }
    }
}

/// Dispatches and classifies every failure as an [`AppError`]: flag-parse
/// and spec mistakes exit 2, unsupported combinations exit 3, runtime
/// failures exit 1 — the exact codes `FailureKind::exit_code` defines.
fn run(args: &[String]) -> Result<(), AppError> {
    let Some(command) = args.first() else {
        eprintln!("{HELP}");
        return Err(AppError::usage("a subcommand is required"));
    };
    // The trace-analysis family takes positional arguments, which the flag
    // parser would reject; dispatch on the verb before parsing. A bare
    // `mpe trace --circuit ...` still reaches the legacy VCD capture.
    if command == "trace" {
        if let Some(verb @ ("summarize" | "diff" | "export-convergence")) =
            args.get(1).map(String::as_str)
        {
            return run_trace_tool(verb, &args[2..]).map_err(|e| AppError::runtime(e.to_string()));
        }
        // A bare word that isn't a known verb is a typo'd subcommand; a
        // flag (or nothing) falls through to the legacy VCD capture.
        if let Some(got) = args.get(1).filter(|a| !a.starts_with('-')) {
            return Err(AppError::usage(format!(
                "unknown trace subcommand `{got}` \
                 (supported: summarize, diff, export-convergence; \
                 `trace --circuit ...` captures a VCD waveform)"
            )));
        }
    }
    // The daemon has its own flag set; dispatch before the one-shot parser.
    if command == "serve" {
        return run_serve(&args[1..]);
    }
    let flags = Flags::parse(&args[1..]).map_err(|msg| {
        status!("{HELP}");
        AppError::usage(msg)
    })?;
    // Unsupported metric/kernel combinations are usage errors: rejected
    // here, before any circuit is built or simulated, with their own exit
    // code (3) — distinct from flag-parse errors (2) and runtime
    // failures (1).
    validate_kernel_usage(command, &flags)?;
    let result = match command.as_str() {
        "estimate" => run_estimate(&flags, Metric::Power),
        "delay" => run_estimate(&flags, Metric::Delay),
        "average" => run_average(&flags),
        "info" => run_info(&flags),
        "trace" => run_trace(&flags),
        "generate" => run_generate(&flags),
        "help" | "--help" | "-h" => {
            println!("{HELP}");
            Ok(())
        }
        other => {
            return Err(AppError::usage(format!("unknown subcommand `{other}`")));
        }
    };
    result.map_err(|e| AppError::runtime(e.to_string()))
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Metric {
    Power,
    Delay,
}

/// Rejects kernel/metric combinations no kernel implements. The message
/// is [`kernel_usage_error`]'s — the same one `POST /jobs` returns as a
/// 422, so CLI and server reject the combination identically.
fn validate_kernel_usage(command: &str, flags: &Flags) -> Result<(), AppError> {
    if command == "delay" && matches!(flags.kernel, KernelMode::Packed | KernelMode::Packed128) {
        return Err(kernel_usage_error(flags.kernel));
    }
    Ok(())
}

#[derive(Debug)]
struct Flags {
    circuit: Option<Iscas85>,
    bench_path: Option<String>,
    verilog_path: Option<String>,
    gen_seed: u64,
    epsilon: Option<f64>,
    confidence: f64,
    population: u64,
    seed: u64,
    workers: NonZeroUsize,
    delay_model: DelayModel,
    kernel: KernelMode,
    activity: Option<f64>,
    json: bool,
    sample_policy: SamplePolicy,
    checkpoint: Option<String>,
    deadline: Option<f64>,
    hyper_budget: Option<usize>,
    stall_timeout: Option<f64>,
    trace_file: Option<String>,
    metrics: bool,
    progress: bool,
    live: bool,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut flags = Flags {
            circuit: None,
            bench_path: None,
            verilog_path: None,
            gen_seed: 7,
            epsilon: None,
            confidence: 0.90,
            population: 160_000,
            seed: 42,
            workers: NonZeroUsize::MIN,
            delay_model: DelayModel::Unit,
            kernel: KernelMode::Auto,
            activity: None,
            json: false,
            sample_policy: SamplePolicy::Fail,
            checkpoint: None,
            deadline: None,
            hyper_budget: None,
            stall_timeout: None,
            trace_file: None,
            metrics: false,
            progress: false,
            live: false,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next()
                    .map(String::as_str)
                    .ok_or_else(|| format!("missing value for {flag}"))
            };
            match flag.as_str() {
                "--circuit" => {
                    let name = value()?;
                    flags.circuit = Some(
                        Iscas85::from_name(name)
                            .ok_or_else(|| format!("unknown circuit `{name}`"))?,
                    );
                }
                "--bench" => flags.bench_path = Some(value()?.to_string()),
                "--verilog" => flags.verilog_path = Some(value()?.to_string()),
                "--gen-seed" => flags.gen_seed = parse_num(value()?, "--gen-seed")?,
                "--epsilon" => flags.epsilon = Some(parse_num(value()?, "--epsilon")?),
                "--confidence" => flags.confidence = parse_num(value()?, "--confidence")?,
                "--population" => flags.population = parse_num(value()?, "--population")?,
                "--seed" => flags.seed = parse_num(value()?, "--seed")?,
                "--workers" => {
                    let n: usize = parse_num(value()?, "--workers")?;
                    flags.workers = NonZeroUsize::new(n).ok_or_else(|| {
                        "--workers expects a positive integer, got `0`".to_string()
                    })?;
                }
                "--delay-model" => {
                    flags.delay_model = match value()? {
                        "zero" => DelayModel::Zero,
                        "unit" => DelayModel::Unit,
                        "fanout" => DelayModel::fanout_default(),
                        other => return Err(format!("unknown delay model `{other}`")),
                    }
                }
                "--kernel" => {
                    let name = value()?;
                    flags.kernel = KernelMode::parse(name)
                        .ok_or_else(|| format!("unknown kernel `{name}`"))?;
                }
                "--activity" => flags.activity = Some(parse_num(value()?, "--activity")?),
                "--json" => flags.json = true,
                // `SamplePolicy::parse` is shared with the job API, so
                // `--sample-policy` and the spec's `sample_policy` field
                // accept the same spellings with the same diagnostics.
                "--sample-policy" => flags.sample_policy = SamplePolicy::parse(value()?)?,
                "--checkpoint" => flags.checkpoint = Some(value()?.to_string()),
                "--deadline" => {
                    flags.deadline = Some(parse_seconds(value()?, "--deadline")?);
                }
                "--hyper-budget" => {
                    flags.hyper_budget = Some(parse_num(value()?, "--hyper-budget")?);
                }
                "--stall-timeout" => {
                    flags.stall_timeout = Some(parse_seconds(value()?, "--stall-timeout")?);
                }
                "--trace-file" => flags.trace_file = Some(value()?.to_string()),
                "--metrics" => flags.metrics = true,
                "--progress" => flags.progress = true,
                "--live" => match value()? {
                    "ndjson" => flags.live = true,
                    other => {
                        return Err(format!("unknown --live mode `{other}` (supported: ndjson)"))
                    }
                },
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(flags)
    }

    fn load_circuit(&self) -> Result<Circuit, Box<dyn std::error::Error>> {
        if let Some(path) = &self.verilog_path {
            let text = std::fs::read_to_string(path)?;
            return Ok(mpe_netlist::verilog::parse(&text)?);
        }
        match (&self.bench_path, self.circuit) {
            (Some(path), _) => {
                let text = std::fs::read_to_string(path)?;
                let name = std::path::Path::new(path)
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or("netlist");
                Ok(bench_format::parse(&text, name)?)
            }
            (None, Some(which)) => Ok(generate(which, self.gen_seed)?),
            (None, None) => Err("select a circuit with --circuit, --bench or --verilog".into()),
        }
    }

    fn generator(&self) -> Result<PairGenerator, Box<dyn std::error::Error>> {
        match self.activity {
            Some(a) => {
                let g = PairGenerator::Activity { activity: a };
                g.validate(1)
                    .map_err(|e| -> Box<dyn std::error::Error> { Box::new(e) })?;
                Ok(g)
            }
            None => Ok(PairGenerator::Uniform),
        }
    }

    /// Builds the telemetry handle implied by the observability flags:
    /// disabled (zero overhead, bit-identical estimates) unless at least
    /// one of `--trace-file`, `--metrics`, `--progress`, `--live` was
    /// given.
    ///
    /// Live consumers (`--progress`, `--live ndjson`) are never wired as
    /// direct sinks: they tail a bounded [`SubscriberSink`] ring on their
    /// own threads, so a stalled terminal or blocked stdout pipe drops
    /// events (counted) instead of stalling the estimation loop.
    fn telemetry(&self) -> Result<(Telemetry, TelemetryPipes), Box<dyn std::error::Error>> {
        if self.trace_file.is_none() && !self.metrics && !self.progress && !self.live {
            return Ok((Telemetry::disabled(), TelemetryPipes::none()));
        }
        let telemetry = Telemetry::enabled();
        if let Some(path) = &self.trace_file {
            let sink = JsonlSink::create(path)
                .map_err(|e| format!("cannot create trace file `{path}`: {e}"))?;
            telemetry.add_sink(Box::new(sink));
        }
        let mut pipes = TelemetryPipes::none();
        if self.progress || self.live {
            let (sink, hub) = SubscriberSink::bounded(DEFAULT_SUBSCRIBER_CAPACITY);
            let mut forwards = Vec::new();
            if self.progress {
                forwards.push(forward(hub.subscribe(), Box::new(ProgressSink::stderr())));
            }
            if self.live {
                forwards.push(forward(
                    hub.subscribe(),
                    Box::new(JsonlSink::new(std::io::stdout())),
                ));
            }
            telemetry.add_sink(Box::new(sink));
            pipes = TelemetryPipes {
                hub: Some(hub),
                forwards,
                live: self.live,
            };
        }
        Ok((telemetry, pipes))
    }

    /// Shared with the job API via [`EstimationConfig::for_deployment`]:
    /// one definition of the deployment defaults keeps CLI and served
    /// reports byte-identical for the same parameters.
    fn estimation_config(&self, default_eps: f64) -> EstimationConfig {
        EstimationConfig::for_deployment(
            self.epsilon.unwrap_or(default_eps),
            self.confidence,
            if self.population == 0 {
                None
            } else {
                Some(self.population)
            },
            self.sample_policy,
        )
    }
}

/// The live consumers tailing the run's bounded subscriber ring (progress
/// line, NDJSON stream) and the hub that feeds them. `finish` closes the
/// stream, joins the forwarder threads and reports the drop accounting —
/// the run itself never waits on a consumer.
struct TelemetryPipes {
    hub: Option<maxpower::telemetry::SubscriberHub>,
    forwards: Vec<ForwardHandle>,
    live: bool,
}

impl TelemetryPipes {
    fn none() -> Self {
        TelemetryPipes {
            hub: None,
            forwards: Vec::new(),
            live: false,
        }
    }

    /// Ends the live stream: closes the hub (waking any blocked
    /// forwarder), drains what is still buffered, and reports how many
    /// events each consumer missed to the bounded buffer.
    fn finish(self) {
        let Some(hub) = self.hub else { return };
        hub.close();
        let mut forwarded = 0u64;
        let mut dropped = 0u64;
        for handle in self.forwards {
            let (f, d) = handle.join();
            forwarded += f;
            dropped += d;
        }
        if self.live {
            status!("live stream: {forwarded} events forwarded, {dropped} dropped");
        } else if dropped > 0 {
            status!(
                "note: {dropped} telemetry events dropped by the bounded \
                 progress buffer (the run was not slowed down)"
            );
        }
    }
}

/// First `SIGINT`/`SIGTERM` trips the run's [`CancelToken`] — the engine
/// commits the in-flight prefix, writes a final checkpoint and reports
/// `status: INTERRUPTED`. A second signal aborts immediately with the
/// conventional `128 + SIGINT` exit code.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::OnceLock;

    use maxpower::CancelToken;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn _exit(code: i32) -> !;
    }

    static TOKEN: OnceLock<CancelToken> = OnceLock::new();
    static SIGNALS_SEEN: AtomicUsize = AtomicUsize::new(0);

    // Only async-signal-safe operations are allowed here: atomic stores
    // (tripping the token) and `_exit`. No allocation, no printing.
    extern "C" fn handle(_signum: i32) {
        if SIGNALS_SEEN.fetch_add(1, Ordering::AcqRel) == 0 {
            if let Some(token) = TOKEN.get() {
                token.cancel();
            }
        } else {
            unsafe { _exit(130) }
        }
    }

    /// Installs the handlers (idempotent) and returns the shared token.
    pub fn install() -> CancelToken {
        let token = TOKEN.get_or_init(CancelToken::new).clone();
        unsafe {
            signal(SIGINT, handle as extern "C" fn(i32) as usize);
            signal(SIGTERM, handle as extern "C" fn(i32) as usize);
        }
        token
    }
}

/// Signal handling is unix-only; elsewhere the token is still wired up so
/// `--deadline` / `--hyper-budget` behave identically.
#[cfg(not(unix))]
mod signals {
    use maxpower::CancelToken;

    pub fn install() -> CancelToken {
        CancelToken::new()
    }
}

/// Runs the session under signal/deadline/budget supervision, with
/// crash-safe checkpoint/resume when `--checkpoint` is set.
fn run_to_completion<F: PowerSourceFactory>(
    session: &Session,
    factory: &F,
    flags: &Flags,
) -> Result<MaxPowerEstimate, Box<dyn std::error::Error>> {
    let mut budget = RunBudget::none();
    if let Some(secs) = flags.deadline {
        budget = budget.with_deadline(Duration::from_secs_f64(secs));
    }
    if let Some(n) = flags.hyper_budget {
        budget = budget.with_max_hyper_samples(n);
    }
    if let Some(secs) = flags.stall_timeout {
        budget = budget.with_stall_timeout(Duration::from_secs_f64(secs));
    }
    let opts = RunOptions::default()
        .seeded(flags.seed)
        .workers(flags.workers)
        .cancel_token(signals::install())
        .budget(budget);
    let Some(path) = &flags.checkpoint else {
        return Ok(session.run(factory, opts)?);
    };
    let resume = match load_with_recovery(path, Checkpoint::from_json)? {
        Some((cp, CheckpointSource::Primary)) => Some(cp),
        Some((cp, CheckpointSource::Backup)) => {
            status!(
                "warning: checkpoint `{path}` is missing or corrupt; \
                 recovered from backup `{}`",
                backup_path(path)
            );
            Some(cp)
        }
        None => None,
    };
    if let Some(cp) = &resume {
        status!(
            "resuming from checkpoint `{path}` at {} hyper-samples",
            cp.hyper_samples()
        );
    }
    let mut save_err: Option<std::io::Error> = None;
    let mut save = |cp: &Checkpoint| {
        if let Err(e) = save_atomic(path, &cp.to_json()) {
            save_err = Some(e);
        }
    };
    let mut opts = opts.save_with(&mut save);
    if let Some(cp) = &resume {
        opts = opts.resume(cp);
    }
    let estimate = session.run(factory, opts)?;
    if let Some(e) = save_err {
        status!("warning: failed to persist checkpoint to `{path}`: {e}");
    }
    Ok(estimate)
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("{flag} expects a number, got `{s}`"))
}

/// Parses a duration flag: a finite, non-negative number of seconds
/// (`Duration::from_secs_f64` panics on anything else).
fn parse_seconds(s: &str, flag: &str) -> Result<f64, String> {
    let secs: f64 = parse_num(s, flag)?;
    if !secs.is_finite() || secs < 0.0 {
        return Err(format!(
            "{flag} expects a non-negative number of seconds, got `{s}`"
        ));
    }
    Ok(secs)
}

fn run_estimate(flags: &Flags, metric: Metric) -> Result<(), Box<dyn std::error::Error>> {
    if flags.live && flags.json {
        return Err(
            "--live ndjson streams events on stdout and cannot be combined with --json \
             (use --trace-file to capture events alongside a JSON report)"
                .into(),
        );
    }
    let circuit = flags.load_circuit()?;
    let generator = flags.generator()?;
    let config = flags.estimation_config(0.05);
    let (telemetry, pipes) = flags.telemetry()?;
    let session = EstimatorBuilder::new(config)
        .telemetry(telemetry.clone())
        .build();

    let workers = flags.workers.get();
    if let Ok(available) = std::thread::available_parallelism() {
        if workers > available.get() {
            status!(
                "warning: --workers {workers} exceeds the {} available hardware threads; \
                 results are identical but the extra workers only add overhead",
                available.get()
            );
        }
    }

    let started = Instant::now();
    let (estimate, metric_name, unit, kernel) = match metric {
        Metric::Power => {
            let source = SimulatorSource::new(
                &circuit,
                generator,
                flags.delay_model,
                PowerConfig::default(),
            )
            .with_kernel(flags.kernel);
            let kernel = source.kernel();
            (
                run_to_completion(&session, &source, flags)?,
                "max_power_mw",
                "mW",
                kernel,
            )
        }
        Metric::Delay => {
            // Packed kernels were already rejected in main's arg
            // validation; the delay source is always scalar.
            let source = DelaySource::new(&circuit, generator, flags.delay_model);
            (
                run_to_completion(&session, &source, flags)?,
                "max_delay_units",
                "delay units",
                KernelMode::Scalar,
            )
        }
    };
    let wall_ms = 1e3 * started.elapsed().as_secs_f64();

    // Make sure the trace file is complete (the run span's `span_end` is
    // emitted as the estimator returns, after its internal flush) and the
    // live consumers have drained before other output: `finish` closes the
    // subscriber hub and joins the forwarder threads.
    telemetry.flush();
    pipes.finish();

    if flags.json {
        let host_parallelism = std::thread::available_parallelism()
            .ok()
            .map(NonZeroUsize::get);
        let mut report = EstimateReport::new(circuit.name(), metric_name, &estimate)
            .with_execution(workers, Some(wall_ms))
            .with_kernel(kernel.as_str(), kernel.lanes(), host_parallelism);
        if telemetry.is_enabled() {
            report = report.with_telemetry(&telemetry.snapshot());
        }
        println!("{}", report.to_json());
    } else {
        // Under --live, stdout is the NDJSON stream; the headline result
        // moves to stderr with the rest of the human-facing lines.
        let result = |line: String| {
            if flags.live {
                status!("{line}");
            } else {
                println!("{line}");
            }
        };
        result(format!(
            "{} {} ≈ {:.4} {unit} ±{:.1}% at {:.0}% confidence",
            circuit.name(),
            metric_name,
            estimate.estimate_mw,
            100.0 * estimate.relative_error,
            100.0 * estimate.confidence,
        ));
        result(format!(
            "cost: {} vector pairs, {} hyper-samples; largest observation {:.4} {unit}",
            estimate.units_used, estimate.hyper_samples, estimate.observed_max_mw,
        ));
        result(format!(
            "execution: {workers} worker{} in {:.2} s wall ({kernel} kernel)",
            if workers == 1 { "" } else { "s" },
            wall_ms / 1e3,
        ));
        match estimate.status {
            RunStatus::Converged => status!("status: converged"),
            RunStatus::BudgetExhausted => {
                status!("status: BUDGET EXHAUSTED — partial result, target error not met")
            }
            RunStatus::Degraded { fallback } => status!(
                "status: degraded — deepest fallback estimator: {}",
                fallback.label()
            ),
            RunStatus::Interrupted { reason } => status!(
                "status: INTERRUPTED ({reason}) — valid partial result over {} \
                 hyper-samples; rerun with --checkpoint to continue",
                estimate.hyper_samples
            ),
        }
        let h = estimate.health;
        if !h.is_clean() {
            status!(
                "health: {} source errors survived, {} readings discarded, \
                 {} sample retries, {} MLE retries, {} degenerate bailouts, \
                 {} POT fallbacks, {} quantile fallbacks, \
                 {} worker restarts, {} worker stalls{}",
                h.source_errors,
                h.samples_discarded,
                h.sample_retries,
                h.mle_retries,
                h.degenerate_bailouts,
                h.pot_fallbacks,
                h.quantile_fallbacks,
                h.worker_restarts,
                h.worker_stalls,
                if h.zero_mean_guard {
                    "; zero-mean guard active"
                } else {
                    ""
                },
            );
        }
        if h.irregular_fits > 0 {
            status!(
                "audit: {} MLE fit(s) violate Smith's α > 2 regularity condition; \
                 the CI's asymptotic justification is weakened there",
                h.irregular_fits
            );
        }
    }

    if flags.metrics {
        status!("{}", telemetry.render_summary());
        // The exposition is machine output: stdout normally, stderr when
        // --json or --live already owns stdout.
        if flags.json || flags.live {
            eprint!("{}", telemetry.render_exposition());
        } else {
            print!("{}", telemetry.render_exposition());
        }
    }
    Ok(())
}

fn run_average(flags: &Flags) -> Result<(), Box<dyn std::error::Error>> {
    let circuit = flags.load_circuit()?;
    let generator = flags.generator()?;
    let mut source = SimulatorSource::new(
        &circuit,
        generator,
        flags.delay_model,
        PowerConfig::default(),
    );
    let mut rng = SmallRng::seed_from_u64(flags.seed);
    let est = estimate_average_power(
        &mut source,
        flags.epsilon.unwrap_or(0.02),
        flags.confidence,
        100,
        5_000_000,
        &mut rng,
    )?;
    println!(
        "{} average power ≈ {:.4} mW ±{:.1}% at {:.0}% confidence ({} simulations)",
        circuit.name(),
        est.mean_mw,
        100.0 * est.relative_error,
        100.0 * flags.confidence,
        est.units_used,
    );
    Ok(())
}

fn run_info(flags: &Flags) -> Result<(), Box<dyn std::error::Error>> {
    let circuit = flags.load_circuit()?;
    let stats = circuit.stats();
    println!("{}: {}", circuit.name(), stats);
    let mut kinds: Vec<_> = stats.kind_histogram.iter().collect();
    kinds.sort_by_key(|(k, _)| k.bench_keyword());
    for (kind, count) in kinds {
        println!("  {:<5} {count}", kind.bench_keyword());
    }
    let cap = mpe_netlist::CapacitanceModel::default().total_capacitance(&circuit);
    println!("  total switched-capacitance bound: {cap:.0} fF");
    Ok(())
}

fn run_trace(flags: &Flags) -> Result<(), Box<dyn std::error::Error>> {
    let circuit = flags.load_circuit()?;
    let generator = flags.generator()?;
    let mut rng = SmallRng::seed_from_u64(flags.seed);
    let p1 = generator.generate(&mut rng, circuit.num_inputs());
    let wave = mpe_sim::Waveform::capture(&circuit, &p1.v1, &p1.v2, flags.delay_model)?;
    status!(
        "traced 1 vector pair: {} transitions, settle time {} units; glitchiest nodes:",
        wave.transitions().len(),
        wave.settle_time()
    );
    for (node, count) in wave.glitchiest(5) {
        status!("  {:<10} {count} transitions", circuit.node_name(node));
    }
    print!("{}", wave.to_vcd(&circuit));
    Ok(())
}

fn run_generate(flags: &Flags) -> Result<(), Box<dyn std::error::Error>> {
    let circuit = flags.load_circuit()?;
    print!("{}", bench_format::write(&circuit));
    Ok(())
}

/// The `mpe serve` flag set (distinct from the one-shot [`Flags`]).
struct ServeFlags {
    config: ServerConfig,
    addr_file: Option<String>,
}

impl ServeFlags {
    fn parse(args: &[String]) -> Result<ServeFlags, AppError> {
        let mut config = ServerConfig::default();
        let mut addr_file = None;
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next()
                    .map(String::as_str)
                    .ok_or_else(|| AppError::usage(format!("missing value for {flag}")))
            };
            match flag.as_str() {
                "--addr" => config.addr = value()?.to_string(),
                "--addr-file" => addr_file = Some(value()?.to_string()),
                "--runners" => {
                    config.runners = parse_num(value()?, "--runners").map_err(AppError::usage)?;
                    if config.runners == 0 {
                        return Err(AppError::usage(
                            "--runners expects a positive integer, got `0`",
                        ));
                    }
                }
                "--http-threads" => {
                    config.http_threads =
                        parse_num(value()?, "--http-threads").map_err(AppError::usage)?;
                }
                "--queue-depth" => {
                    config.queue_depth =
                        parse_num(value()?, "--queue-depth").map_err(AppError::usage)?;
                }
                "--spool" => config.spool = Some(value()?.into()),
                other => {
                    return Err(AppError::usage(format!(
                        "unknown serve flag `{other}` (see `mpe help`)"
                    )));
                }
            }
        }
        Ok(ServeFlags { config, addr_file })
    }
}

/// Boots the daemon and serves until SIGTERM/SIGINT (graceful drain:
/// running jobs stop with valid partial results and final checkpoints)
/// or `POST /shutdown`.
fn run_serve(args: &[String]) -> Result<(), AppError> {
    let flags = ServeFlags::parse(args)?;
    let runners = flags.config.runners;
    let queue_depth = flags.config.queue_depth;
    let spool = flags.config.spool.clone();
    let server = Server::bind(flags.config, signals::install())?;
    let addr = server.local_addr()?;
    status!(
        "mpe serve: listening on http://{addr} \
         ({runners} runners, queue depth {queue_depth}, spool: {})",
        spool
            .as_deref()
            .map_or_else(|| "disabled".to_string(), |p| p.display().to_string()),
    );
    if let Some(path) = &flags.addr_file {
        // Atomic so a supervisor polling the file never reads a torn
        // address; ephemeral ports make this the only reliable handoff.
        save_atomic(path, &format!("{addr}\n"))
            .map_err(|e| AppError::runtime(format!("cannot write --addr-file `{path}`: {e}")))?;
    }
    server.run()?;
    status!("mpe serve: drained and stopped");
    Ok(())
}

/// Reads and validates a JSONL run trace (schema v1 or v2).
fn load_trace(path: &str) -> Result<TraceSummary, Box<dyn std::error::Error>> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read trace `{path}`: {e}"))?;
    replay(text.lines()).map_err(|e| format!("trace `{path}` invalid — {e}").into())
}

/// The `mpe trace summarize|diff|export-convergence` family: offline
/// analysis of JSONL run traces, sharing the replay/validation layer with
/// CI and the benchmark tooling.
fn run_trace_tool(verb: &str, args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    match verb {
        "summarize" => {
            let [path] = args else {
                return Err("usage: mpe trace summarize <trace.jsonl>".into());
            };
            let summary = load_trace(path)?;
            print_trace_summary(path, &summary);
            Ok(())
        }
        "diff" => {
            let [a, b] = args else {
                return Err("usage: mpe trace diff <a.jsonl> <b.jsonl>".into());
            };
            let sa = load_trace(a)?;
            let sb = load_trace(b)?;
            let drift = diff_summaries(&sa, &sb);
            if drift.is_empty() {
                println!("zero drift: the traces' deterministic content is identical");
                println!(
                    "({} vs {} events; timings and heartbeats excluded by design)",
                    sa.events, sb.events
                );
                Ok(())
            } else {
                for line in &drift {
                    println!("drift: {line}");
                }
                Err(format!("{} divergence(s) between `{a}` and `{b}`", drift.len()).into())
            }
        }
        "export-convergence" => {
            let [path] = args else {
                return Err("usage: mpe trace export-convergence <trace.jsonl>".into());
            };
            let summary = load_trace(path)?;
            let means = summary.metrics.gauge_series(names::RUNNING_MEAN_MW);
            if means.is_empty() {
                return Err(format!(
                    "trace `{path}` carries no `{}` gauge — was the run traced with telemetry?",
                    names::RUNNING_MEAN_MW
                )
                .into());
            }
            let widths = summary.metrics.gauge_series(names::CI_RELATIVE_HALF_WIDTH);
            println!("k,mean_mw,relative_half_width");
            for (i, mean) in means.iter().enumerate() {
                // Infinite widths (before k = 2) print as `inf`, which
                // spreadsheet tools tolerate better than an empty cell.
                let width = widths.get(i).copied().unwrap_or(f64::INFINITY);
                println!("{},{mean},{width}", i + 1);
            }
            Ok(())
        }
        _ => unreachable!("dispatch guarantees a known verb"),
    }
}

/// Renders a trace summary: phase totals (matching the report's telemetry
/// block), latency quantiles, counters and the estimator audit trail.
fn print_trace_summary(path: &str, summary: &TraceSummary) {
    println!(
        "trace `{path}`: {} events, max span depth {}",
        summary.events, summary.max_depth
    );
    println!(
        "{:<14} {:>8} {:>14} {:>12} {:>12} {:>12}",
        "phase", "count", "total_ns", "p50_ns", "p95_ns", "p99_ns"
    );
    for kind in SpanKind::ALL {
        let stat = summary.metrics.phase(kind);
        if stat.count == 0 {
            continue;
        }
        let (p50, p95, p99) = summary
            .metrics
            .phase_quantiles_ns(kind)
            .unwrap_or((0, 0, 0));
        println!(
            "{:<14} {:>8} {:>14} {:>12} {:>12} {:>12}",
            kind.label(),
            stat.count,
            stat.total_ns,
            p50,
            p95,
            p99
        );
    }
    if !summary.metrics.counters.is_empty() {
        println!("counters:");
        for (name, value) in &summary.metrics.counters {
            println!("  {name:<32} {value}");
        }
    }
    if summary.fit_diags.is_empty() {
        println!("audit trail: none (schema v1 trace, or telemetry-off run)");
    } else {
        let count_rung = |rung: &str| summary.fit_diags.iter().filter(|d| d.rung == rung).count();
        let irregular = summary
            .fit_diags
            .iter()
            .filter(|d| d.rung == "mle" && d.tail_shape.is_some_and(|a| a <= 2.0))
            .count();
        println!(
            "audit trail: {} fits (mle {}, pot {}, quantile {}); {} irregular (α ≤ 2)",
            summary.fit_diags.len(),
            count_rung("mle"),
            count_rung("pot"),
            count_rung("quantile"),
            irregular
        );
        for diag in &summary.fit_diags {
            let fmt = |v: Option<f64>| match v {
                Some(x) => format!("{x:.4}"),
                None => "-".to_string(),
            };
            println!(
                "  k={:<5} rung={:<8} reason={:<18} log_lik={:>10} ks={:>8} tail={:>8}",
                diag.k,
                diag.rung,
                diag.reason,
                fmt(diag.log_likelihood),
                fmt(diag.ks_distance),
                fmt(diag.tail_shape)
            );
        }
    }
}
