//! Error type for the estimation engine.

use std::fmt;

use mpe_mle::MleError;
use mpe_sim::SimError;
use mpe_stats::StatsError;

/// Error raised by the maximum-power estimation engine.
#[derive(Debug, Clone, PartialEq)]
pub enum MaxPowerError {
    /// The configuration was internally inconsistent.
    InvalidConfig {
        /// Explanation.
        message: String,
    },
    /// The iterative procedure hit its hyper-sample cap without meeting the
    /// requested error/confidence target. The partial estimate is included
    /// so callers can decide whether it is good enough.
    NotConverged {
        /// Best estimate at the cap (mW).
        estimate_mw: f64,
        /// Relative half-width achieved.
        achieved_relative_error: f64,
        /// Hyper-samples consumed.
        hyper_samples: usize,
    },
    /// Repeated MLE failures while generating a hyper-sample (degenerate
    /// power data, e.g. a constant-power circuit).
    HyperSampleFailed {
        /// The final MLE failure.
        cause: MleError,
        /// Retries attempted.
        attempts: usize,
    },
    /// A simulation call inside a power source failed.
    Sim(SimError),
    /// A statistical routine failed.
    Stats(StatsError),
}

impl fmt::Display for MaxPowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaxPowerError::InvalidConfig { message } => {
                write!(f, "invalid estimation config: {message}")
            }
            MaxPowerError::NotConverged {
                estimate_mw,
                achieved_relative_error,
                hyper_samples,
            } => write!(
                f,
                "estimation did not converge after {hyper_samples} hyper-samples \
                 (best {estimate_mw:.4} mW at ±{:.2}%)",
                100.0 * achieved_relative_error
            ),
            MaxPowerError::HyperSampleFailed { cause, attempts } => {
                write!(f, "hyper-sample generation failed after {attempts} attempts: {cause}")
            }
            MaxPowerError::Sim(e) => write!(f, "simulation failure: {e}"),
            MaxPowerError::Stats(e) => write!(f, "statistics failure: {e}"),
        }
    }
}

impl std::error::Error for MaxPowerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MaxPowerError::HyperSampleFailed { cause, .. } => Some(cause),
            MaxPowerError::Sim(e) => Some(e),
            MaxPowerError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for MaxPowerError {
    fn from(e: SimError) -> Self {
        MaxPowerError::Sim(e)
    }
}

impl From<StatsError> for MaxPowerError {
    fn from(e: StatsError) -> Self {
        MaxPowerError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = MaxPowerError::InvalidConfig {
            message: "n too small".into(),
        };
        assert!(e.to_string().contains("n too small"));
        let e = MaxPowerError::NotConverged {
            estimate_mw: 5.0,
            achieved_relative_error: 0.07,
            hyper_samples: 30,
        };
        assert!(e.to_string().contains("30"));
        assert!(e.to_string().contains("7.00%"));
    }

    #[test]
    fn conversions() {
        let e: MaxPowerError = SimError::WidthMismatch { expected: 3, got: 1 }.into();
        assert!(matches!(e, MaxPowerError::Sim(_)));
        let e: MaxPowerError = StatsError::invalid("p", "0<p<1", 2.0).into();
        assert!(matches!(e, MaxPowerError::Stats(_)));
    }
}
