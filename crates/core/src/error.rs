//! Error type for the estimation engine.

use std::fmt;

use mpe_mle::MleError;
use mpe_sim::SimError;
use mpe_stats::StatsError;

use crate::estimator::EstimateHistoryEntry;
use crate::supervise::StopReason;

/// Error raised by the maximum-power estimation engine.
#[derive(Debug, Clone, PartialEq)]
pub enum MaxPowerError {
    /// The configuration was internally inconsistent.
    InvalidConfig {
        /// Explanation.
        message: String,
    },
    /// The iterative procedure hit its hyper-sample cap without meeting the
    /// requested error/confidence target. The partial result is included so
    /// callers can decide whether it is good enough — not just the point
    /// estimate but the observed maximum (a hard lower bound on the true
    /// maximum), the units spent, and the full convergence history.
    ///
    /// Note that [`Session::run`](crate::Session::run) no longer *raises*
    /// this for a capped run (it returns the partial estimate with
    /// [`RunStatus::BudgetExhausted`](crate::RunStatus)); the variant
    /// remains for callers that require convergence, e.g. the
    /// average-power estimator.
    NotConverged {
        /// Best estimate at the cap (mW).
        estimate_mw: f64,
        /// Relative half-width achieved.
        achieved_relative_error: f64,
        /// Hyper-samples consumed.
        hyper_samples: usize,
        /// Largest reading observed before giving up (mW) — a certain
        /// lower bound on the quantity being estimated.
        observed_max_mw: f64,
        /// Vector pairs (or samples) consumed before giving up.
        units_used: usize,
        /// Per-iteration convergence trace, for diagnosing *why* the run
        /// stalled (oscillating mean, slowly shrinking interval, …).
        history: Vec<EstimateHistoryEntry>,
    },
    /// Repeated MLE failures while generating a hyper-sample (degenerate
    /// power data, e.g. a constant-power circuit) under
    /// [`FallbackPolicy::ErrorOut`](crate::FallbackPolicy).
    HyperSampleFailed {
        /// The final MLE failure.
        cause: MleError,
        /// Fit attempts made (including the first).
        attempts: usize,
    },
    /// A power source failed transiently (an injected fault, a crashed
    /// simulator process, a stalled measurement past its deadline).
    Source {
        /// Explanation from the source.
        message: String,
    },
    /// The source returned a reading the engine cannot use — NaN, ±∞, or
    /// below [`EstimationConfig::min_reading_mw`](crate::EstimationConfig)
    /// — while [`SamplePolicy::Fail`](crate::SamplePolicy) was in force.
    InvalidReading {
        /// The offending reading (mW).
        value_mw: f64,
    },
    /// A [`SamplePolicy`](crate::SamplePolicy) ran out of tolerance while
    /// generating a single hyper-sample.
    SamplePolicyExhausted {
        /// The policy that gave up (`"skip"` or `"retry"`).
        policy: &'static str,
        /// Failures/discards counted when the cap was exceeded.
        count: usize,
        /// The configured cap.
        limit: usize,
    },
    /// A checkpoint could not be resumed (version, config or seed
    /// mismatch, or corrupt contents).
    CheckpointMismatch {
        /// Explanation.
        message: String,
    },
    /// Run supervision stopped the run before it had committed enough
    /// hyper-samples (fewer than two) to form any interval — there is no
    /// valid partial estimate to return. With two or more committed the
    /// engine returns the partial estimate tagged
    /// [`RunStatus::Interrupted`](crate::RunStatus::Interrupted) instead
    /// of raising this.
    Interrupted {
        /// What stopped the run.
        reason: StopReason,
        /// Hyper-samples committed before the stop.
        hyper_samples: usize,
    },
    /// A worker panicked repeatedly on the same hyper-sample index: the
    /// panic is deterministic (hyper-samples are pure functions of config,
    /// seed and index), so requeueing cannot help and the run fails hard.
    Panicked {
        /// Where the panic happened, including the panic message.
        context: String,
        /// Panics observed for this unit of work before escalating.
        panics: usize,
    },
    /// A simulation call inside a power source failed.
    Sim(SimError),
    /// A statistical routine failed.
    Stats(StatsError),
}

impl fmt::Display for MaxPowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaxPowerError::InvalidConfig { message } => {
                write!(f, "invalid estimation config: {message}")
            }
            MaxPowerError::NotConverged {
                estimate_mw,
                achieved_relative_error,
                hyper_samples,
                observed_max_mw,
                units_used,
                ..
            } => write!(
                f,
                "estimation did not converge after {hyper_samples} hyper-samples \
                 (best {estimate_mw:.4} mW at ±{:.2}%; observed max {observed_max_mw:.4} mW \
                 after {units_used} units)",
                100.0 * achieved_relative_error
            ),
            MaxPowerError::HyperSampleFailed { cause, attempts } => {
                write!(
                    f,
                    "hyper-sample generation failed after {attempts} attempts: {cause}"
                )
            }
            MaxPowerError::Source { message } => {
                write!(f, "power source failure: {message}")
            }
            MaxPowerError::InvalidReading { value_mw } => {
                write!(
                    f,
                    "power source returned an unusable reading: {value_mw} mW"
                )
            }
            MaxPowerError::SamplePolicyExhausted {
                policy,
                count,
                limit,
            } => write!(
                f,
                "sample policy '{policy}' exhausted: {count} failures against a cap of {limit} \
                 in one hyper-sample"
            ),
            MaxPowerError::CheckpointMismatch { message } => {
                write!(f, "checkpoint cannot be resumed: {message}")
            }
            MaxPowerError::Interrupted {
                reason,
                hyper_samples,
            } => write!(
                f,
                "run interrupted ({reason}) after {hyper_samples} committed hyper-samples — \
                 too few for a partial estimate"
            ),
            MaxPowerError::Panicked { context, panics } => {
                write!(f, "estimation panicked ({panics} time(s)): {context}")
            }
            MaxPowerError::Sim(e) => write!(f, "simulation failure: {e}"),
            MaxPowerError::Stats(e) => write!(f, "statistics failure: {e}"),
        }
    }
}

impl std::error::Error for MaxPowerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MaxPowerError::HyperSampleFailed { cause, .. } => Some(cause),
            MaxPowerError::Sim(e) => Some(e),
            MaxPowerError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for MaxPowerError {
    fn from(e: SimError) -> Self {
        MaxPowerError::Sim(e)
    }
}

impl From<StatsError> for MaxPowerError {
    fn from(e: StatsError) -> Self {
        MaxPowerError::Stats(e)
    }
}

/// Coarse failure classification shared by every `mpe` surface.
///
/// The CLI maps a kind to its process exit code and the HTTP server maps
/// the *same* kind to a status line, so a given failure is reported
/// consistently no matter how the engine was invoked. The exit codes are
/// the ones the CLI has always used (2 = bad invocation, 3 = unsupported
/// combination, 1 = everything else); `NotFound` and `Busy` only arise
/// over HTTP but still carry a CLI mapping for completeness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The request itself was malformed: unknown flag, unparseable value,
    /// invalid configuration. Retrying without changing the request cannot
    /// succeed.
    Usage,
    /// The request was well-formed but asks for a combination this build
    /// does not support (e.g. a packed kernel under the delay metric).
    Unsupported,
    /// The referenced resource (a job id) does not exist.
    NotFound,
    /// The server is at capacity; the request was rejected before any work
    /// was done and may be retried later.
    Busy,
    /// The run was accepted but failed while executing.
    Runtime,
}

impl FailureKind {
    /// Process exit code the CLI uses for this kind.
    pub fn exit_code(self) -> u8 {
        match self {
            FailureKind::Usage => 2,
            FailureKind::Unsupported => 3,
            FailureKind::NotFound | FailureKind::Busy | FailureKind::Runtime => 1,
        }
    }

    /// HTTP status code and reason phrase for this kind.
    pub fn http_status(self) -> (u16, &'static str) {
        match self {
            FailureKind::Usage => (400, "Bad Request"),
            FailureKind::Unsupported => (422, "Unprocessable Entity"),
            FailureKind::NotFound => (404, "Not Found"),
            FailureKind::Busy => (429, "Too Many Requests"),
            FailureKind::Runtime => (500, "Internal Server Error"),
        }
    }

    /// Stable lowercase label used in both CLI stderr and HTTP bodies.
    pub fn label(self) -> &'static str {
        match self {
            FailureKind::Usage => "usage",
            FailureKind::Unsupported => "unsupported",
            FailureKind::NotFound => "not_found",
            FailureKind::Busy => "busy",
            FailureKind::Runtime => "runtime",
        }
    }
}

/// A classified, renderable failure: the one error shape every `mpe`
/// surface reports. The CLI prints [`Display`](std::fmt::Display) to
/// stderr and exits with [`FailureKind::exit_code`]; the server sends
/// [`AppError::to_json_body`] with [`FailureKind::http_status`]. Both
/// carry the same `kind` label and message, so a failure looks the same
/// in a terminal and in an HTTP client.
#[derive(Debug, Clone, PartialEq)]
pub struct AppError {
    /// Classification driving exit code / HTTP status.
    pub kind: FailureKind,
    /// Human-readable explanation.
    pub message: String,
}

impl AppError {
    /// A [`FailureKind::Usage`] error.
    pub fn usage(message: impl Into<String>) -> Self {
        AppError {
            kind: FailureKind::Usage,
            message: message.into(),
        }
    }

    /// A [`FailureKind::Unsupported`] error.
    pub fn unsupported(message: impl Into<String>) -> Self {
        AppError {
            kind: FailureKind::Unsupported,
            message: message.into(),
        }
    }

    /// A [`FailureKind::NotFound`] error.
    pub fn not_found(message: impl Into<String>) -> Self {
        AppError {
            kind: FailureKind::NotFound,
            message: message.into(),
        }
    }

    /// A [`FailureKind::Busy`] error.
    pub fn busy(message: impl Into<String>) -> Self {
        AppError {
            kind: FailureKind::Busy,
            message: message.into(),
        }
    }

    /// A [`FailureKind::Runtime`] error.
    pub fn runtime(message: impl Into<String>) -> Self {
        AppError {
            kind: FailureKind::Runtime,
            message: message.into(),
        }
    }

    /// The structured JSON body served over HTTP — hand-rolled (the
    /// workspace builds offline without serde) and identical in content
    /// to the CLI stderr rendering.
    pub fn to_json_body(&self) -> String {
        format!(
            "{{\"error\":{{\"kind\":\"{}\",\"message\":\"{}\"}}}}\n",
            self.kind.label(),
            escape_json(&self.message)
        )
    }
}

impl fmt::Display for AppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error[{}]: {}", self.kind.label(), self.message)
    }
}

impl std::error::Error for AppError {}

impl From<MaxPowerError> for AppError {
    fn from(e: MaxPowerError) -> Self {
        let kind = match e {
            MaxPowerError::InvalidConfig { .. } => FailureKind::Usage,
            _ => FailureKind::Runtime,
        };
        AppError {
            kind,
            message: e.to_string(),
        }
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes) for
/// the hand-rolled JSON surfaces that cannot rely on serde offline.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = MaxPowerError::InvalidConfig {
            message: "n too small".into(),
        };
        assert!(e.to_string().contains("n too small"));
        let e = MaxPowerError::NotConverged {
            estimate_mw: 5.0,
            achieved_relative_error: 0.07,
            hyper_samples: 30,
            observed_max_mw: 4.2,
            units_used: 9000,
            history: Vec::new(),
        };
        assert!(e.to_string().contains("30"));
        assert!(e.to_string().contains("7.00%"));
        assert!(e.to_string().contains("4.2"));
        assert!(e.to_string().contains("9000"));
        let e = MaxPowerError::Source {
            message: "injected transient fault".into(),
        };
        assert!(e.to_string().contains("injected transient fault"));
        let e = MaxPowerError::InvalidReading { value_mw: f64::NAN };
        assert!(e.to_string().contains("NaN"));
        let e = MaxPowerError::SamplePolicyExhausted {
            policy: "skip",
            count: 11,
            limit: 10,
        };
        assert!(e.to_string().contains("skip"));
        assert!(e.to_string().contains("11"));
        let e = MaxPowerError::CheckpointMismatch {
            message: "seed differs".into(),
        };
        assert!(e.to_string().contains("seed differs"));
        let e = MaxPowerError::Interrupted {
            reason: StopReason::DeadlineExceeded,
            hyper_samples: 1,
        };
        assert!(e.to_string().contains("deadline exceeded"));
        assert!(e.to_string().contains("1 committed"));
        let e = MaxPowerError::Panicked {
            context: "hyper-sample 4: index overflow".into(),
            panics: 3,
        };
        assert!(e.to_string().contains("hyper-sample 4"));
        assert!(e.to_string().contains("3 time(s)"));
    }

    #[test]
    fn failure_kinds_map_to_stable_exit_codes_and_statuses() {
        assert_eq!(FailureKind::Usage.exit_code(), 2);
        assert_eq!(FailureKind::Unsupported.exit_code(), 3);
        assert_eq!(FailureKind::Runtime.exit_code(), 1);
        assert_eq!(FailureKind::Usage.http_status().0, 400);
        assert_eq!(FailureKind::Unsupported.http_status().0, 422);
        assert_eq!(FailureKind::NotFound.http_status().0, 404);
        assert_eq!(FailureKind::Busy.http_status().0, 429);
        assert_eq!(FailureKind::Runtime.http_status().0, 500);
    }

    #[test]
    fn app_error_renders_identically_structured_text_and_json() {
        let e = AppError::usage("unknown flag '--frobnicate'");
        assert_eq!(e.to_string(), "error[usage]: unknown flag '--frobnicate'");
        assert_eq!(
            e.to_json_body(),
            "{\"error\":{\"kind\":\"usage\",\"message\":\"unknown flag '--frobnicate'\"}}\n"
        );
    }

    #[test]
    fn app_error_json_body_escapes_quotes_and_control_bytes() {
        let e = AppError::runtime("a \"quoted\"\nline\tand \\slash\u{1}");
        let body = e.to_json_body();
        assert!(body.contains("a \\\"quoted\\\"\\nline\\tand \\\\slash\\u0001"));
    }

    #[test]
    fn engine_errors_classify_config_as_usage_and_rest_as_runtime() {
        let e: AppError = MaxPowerError::InvalidConfig {
            message: "n too small".into(),
        }
        .into();
        assert_eq!(e.kind, FailureKind::Usage);
        assert!(e.message.contains("n too small"));
        let e: AppError = MaxPowerError::Source {
            message: "boom".into(),
        }
        .into();
        assert_eq!(e.kind, FailureKind::Runtime);
    }

    #[test]
    fn conversions() {
        let e: MaxPowerError = SimError::WidthMismatch {
            expected: 3,
            got: 1,
        }
        .into();
        assert!(matches!(e, MaxPowerError::Sim(_)));
        let e: MaxPowerError = StatsError::invalid("p", "0<p<1", 2.0).into();
        assert!(matches!(e, MaxPowerError::Stats(_)));
    }
}
