//! Hyper-sample generation — the paper's Figure 3, hardened for
//! deployment.
//!
//! One hyper-sample is one full MLE-based estimate of the maximum power:
//!
//! 1. draw `m` samples of `n` units each from the power source;
//! 2. take each sample's maximum `p_{i,MAX}` (Eqn 3.1);
//! 3. fit the generalized reversed Weibull to the `m` maxima by profile
//!    maximum likelihood;
//! 4. the estimate is the fitted endpoint `μ̂` — or, for a finite
//!    population `|V|`, the `(1 − 1/|V|)` quantile of the fitted Weibull
//!    (the "finite population estimator" of §3.4).
//!
//! Around that idealized loop this module adds the resilience layer:
//!
//! * every draw goes through the configured
//!   [`SamplePolicy`](crate::SamplePolicy), which decides what a source
//!   error or an invalid reading (NaN, ±∞, below
//!   [`min_reading_mw`](crate::EstimationConfig::min_reading_mw)) does —
//!   fail fast, skip, or retry;
//! * a degenerate set of sample maxima is detected *before* the MLE is
//!   attempted, and a provably constant source (every raw draw identical)
//!   bails out after a single sample instead of burning the full retry
//!   budget on fits that cannot succeed;
//! * retries of a degenerate MLE charge an exponentially growing share of
//!   [`mle_retry_budget`](crate::EstimationConfig::mle_retry_budget) so the
//!   engine gives up in logarithmically many attempts;
//! * when the MLE never converges, [`FallbackPolicy::Degrade`] walks the
//!   estimator ladder — POT/GPD endpoint over the raw draws, then the
//!   distribution-free empirical quantile — and records which rung
//!   produced the estimate in [`HyperSample::estimator`].

use rand::RngCore;

use mpe_evt::tail::finite_population_maximum;
use mpe_mle::pot::fit_pot;
use mpe_mle::profile::{fit_reversed_weibull, fit_reversed_weibull_traced, WeibullFit};
use mpe_mle::MleError;
use mpe_telemetry::{names, SpanKind, Telemetry};

use mpe_stats::dist::ContinuousDistribution;
use mpe_stats::ks::ks_statistic;

use crate::config::{BiasCorrection, EstimationConfig, FallbackPolicy, SamplePolicy};
use crate::error::MaxPowerError;
use crate::health::{EstimatorKind, FitDiagnostics, FitReasonCode, HyperHealth};
use crate::source::PowerSource;

/// Empirical quantile above which the POT fallback fits its GPD
/// (it keeps the top 10 % of the raw draws as excesses).
const POT_FALLBACK_QUANTILE: f64 = 0.9;

/// One hyper-sample: a single maximum-power estimate
/// (the paper's `P̂_{i,MAX}`).
#[derive(Debug, Clone)]
pub struct HyperSample {
    /// The estimate (mW): `μ̂`, or the finite-population quantile when
    /// [`EstimationConfig::finite_population`] is set; for fallback
    /// estimators, the POT endpoint or the empirical quantile. Never below
    /// [`observed_max`](Self::observed_max).
    pub estimate_mw: f64,
    /// Which rung of the estimator ladder produced
    /// [`estimate_mw`](Self::estimate_mw).
    pub estimator: EstimatorKind,
    /// The underlying Weibull fit (shape, scale, endpoint, likelihood).
    /// `None` when a fallback estimator produced the estimate.
    pub fit: Option<WeibullFit>,
    /// The sample maxima of the last attempt (`m` values).
    pub sample_maxima: Vec<f64>,
    /// Largest single unit power observed while building this hyper-sample
    /// (a free lower bound on the maximum).
    pub observed_max: f64,
    /// Valid readings consumed (`n × m` per attempt, plus any discarded
    /// readings under [`SamplePolicy::Skip`]/[`SamplePolicy::Retry`]).
    pub units_used: usize,
    /// Fault counters for this hyper-sample.
    pub health: HyperHealth,
    /// Audit record for the fit that produced
    /// [`estimate_mw`](Self::estimate_mw): rung, reason code, and
    /// goodness-of-fit summaries. Computed whether or not telemetry is
    /// enabled, so traced and untraced runs stay bit-identical.
    pub diagnostics: FitDiagnostics,
}

/// Draws one sample of `n` *usable* readings from the source via the
/// batched [`PowerSource::sample_batch`] interface, applying the configured
/// [`SamplePolicy`] to errors and invalid readings. Valid readings are
/// appended to `out` in draw order.
///
/// The fill is greedy: each round requests exactly the readings still
/// missing, validates the returned readings in order, and repeats until the
/// sample is full. Because [`PowerSource::sample_batch`] consumes the RNG
/// exactly as the same number of consecutive `sample` calls would, the
/// sequence of underlying draws — and therefore the committed results — is
/// byte-identical to the former one-reading-at-a-time loop for every
/// policy. (On a policy-exhaustion error a batch may have drawn a few
/// readings past the point where the scalar loop stopped, but errors abort
/// the whole hyper-sample, so no result depends on the RNG state there.)
///
/// Accounting contract: `units_used` counts every `Ok` reading the source
/// produced — including invalid ones a policy discards — because each cost
/// a simulation. Errored calls consume no unit; they are tallied in
/// `health.source_errors` when survived. The `consecutive` retry counter
/// counts failures since the last valid reading, exactly as the per-draw
/// loop did (it reset the counter at each new position, i.e. after each
/// valid reading).
#[allow(clippy::too_many_arguments)]
fn draw_sample(
    source: &mut dyn PowerSource,
    config: &EstimationConfig,
    rng: &mut dyn RngCore,
    health: &mut HyperHealth,
    units_used: &mut usize,
    n: usize,
    out: &mut Vec<f64>,
    batch_buf: &mut Vec<f64>,
    batches: &mut u64,
) -> Result<(), MaxPowerError> {
    let mut valid = 0usize;
    let mut consecutive = 0usize;
    while valid < n {
        batch_buf.clear();
        *batches += 1;
        let batch_result = source.sample_batch(rng, n - valid, batch_buf);
        for &p in batch_buf.iter() {
            *units_used += 1;
            if p.is_finite() && p >= config.min_reading_mw {
                out.push(p);
                valid += 1;
                consecutive = 0;
                continue;
            }
            match config.sample_policy {
                SamplePolicy::Fail => return Err(MaxPowerError::InvalidReading { value_mw: p }),
                SamplePolicy::Skip { max_discarded } => {
                    health.samples_discarded += 1;
                    let count = health.samples_discarded + health.source_errors;
                    if count > max_discarded {
                        return Err(MaxPowerError::SamplePolicyExhausted {
                            policy: "skip",
                            count,
                            limit: max_discarded,
                        });
                    }
                }
                SamplePolicy::Retry { max_attempts } => {
                    health.samples_discarded += 1;
                    health.sample_retries += 1;
                    consecutive += 1;
                    if consecutive > max_attempts {
                        return Err(MaxPowerError::SamplePolicyExhausted {
                            policy: "retry",
                            count: consecutive,
                            limit: max_attempts,
                        });
                    }
                }
            }
        }
        if let Err(e) = batch_result {
            match config.sample_policy {
                SamplePolicy::Fail => return Err(e),
                SamplePolicy::Skip { max_discarded } => {
                    health.source_errors += 1;
                    let count = health.samples_discarded + health.source_errors;
                    if count > max_discarded {
                        return Err(MaxPowerError::SamplePolicyExhausted {
                            policy: "skip",
                            count,
                            limit: max_discarded,
                        });
                    }
                }
                SamplePolicy::Retry { max_attempts } => {
                    health.source_errors += 1;
                    health.sample_retries += 1;
                    consecutive += 1;
                    if consecutive > max_attempts {
                        // Propagate the source's own error: the caller sees
                        // *why* the source kept failing, not just that the
                        // policy gave up.
                        return Err(e);
                    }
                }
            }
        }
    }
    Ok(())
}

/// Everything hyper-sample generation needs besides the source and the
/// RNG: the configuration and an optional telemetry handle.
///
/// One entry point for traced and untraced generation — a context with a
/// disabled handle (the [`HyperSampleContext::new`] default) is the
/// untraced path, and the handle never touches the RNG either way, so
/// enabling telemetry cannot change the estimate.
#[derive(Debug, Clone)]
pub struct HyperSampleContext<'a> {
    config: &'a EstimationConfig,
    telemetry: Telemetry,
    cancel: Option<crate::supervise::CancelToken>,
}

impl<'a> HyperSampleContext<'a> {
    /// A context with telemetry disabled.
    pub fn new(config: &'a EstimationConfig) -> Self {
        HyperSampleContext {
            config,
            telemetry: Telemetry::disabled(),
            cancel: None,
        }
    }

    /// Attaches a telemetry handle: each attempt's draw loop runs inside a
    /// `simulate` span with exact [`names::VECTOR_PAIRS_SIMULATED`] deltas,
    /// MLE fits run inside `fit` spans, successful fits publish the
    /// `hyper_mu_mw`/`hyper_alpha`/`hyper_beta` gauges, and the fallback
    /// ladder runs inside a `fallback` span.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Attaches a cancellation token: generation checks it between the
    /// `m` samples of the hyper-sample and, when tripped, abandons the
    /// hyper-sample with
    /// [`MaxPowerError::Interrupted`](crate::MaxPowerError::Interrupted)
    /// (which the engine turns into a graceful partial result). An
    /// abandoned hyper-sample is re-derived bit-identically on resume, so
    /// cancellation never perturbs determinism.
    #[must_use]
    pub fn with_cancel(mut self, cancel: crate::supervise::CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// The estimation configuration.
    pub fn config(&self) -> &EstimationConfig {
        self.config
    }

    /// The telemetry handle (disabled unless attached).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }
}

/// Emits the telemetry deltas accumulated in `health` since the given
/// baseline. Called once per attempt so counters land near the work that
/// caused them, without threading the handle through [`draw_reading`].
fn emit_health_deltas(telemetry: &Telemetry, health: &HyperHealth, baseline: &HyperHealth) {
    telemetry.counter(
        names::SAMPLES_DISCARDED,
        (health.samples_discarded - baseline.samples_discarded) as u64,
    );
    telemetry.counter(
        names::SOURCE_ERRORS,
        (health.source_errors - baseline.source_errors) as u64,
    );
    telemetry.counter(
        names::SAMPLE_RETRIES,
        (health.sample_retries - baseline.sample_retries) as u64,
    );
}

/// Generates one hyper-sample from the source (paper Figure 3), degrading
/// gracefully per the configured policies.
///
/// The context carries the configuration and (optionally) a telemetry
/// handle — see [`HyperSampleContext`] for what a traced run emits.
///
/// # Errors
///
/// * propagates source/simulation failures per
///   [`EstimationConfig::sample_policy`] (immediately under
///   [`SamplePolicy::Fail`], after the tolerance is exhausted otherwise);
/// * [`MaxPowerError::HyperSampleFailed`] if the MLE stays degenerate
///   through the retry budget *and*
///   [`FallbackPolicy::ErrorOut`] is configured — under the default
///   [`FallbackPolicy::Degrade`] a fallback estimate is returned instead.
pub fn generate_hyper_sample(
    source: &mut dyn PowerSource,
    ctx: &HyperSampleContext<'_>,
    rng: &mut dyn RngCore,
) -> Result<HyperSample, MaxPowerError> {
    let config = ctx.config;
    let telemetry = &ctx.telemetry;
    let n = config.sample_size;
    let m = config.samples_per_hyper;
    let mut units_used = 0usize;
    let mut health = HyperHealth::default();
    // All valid readings across attempts, pooled for the fallback ladder.
    let mut all_draws: Vec<f64> = Vec::with_capacity(n * m);
    let mut observed_max = f64::NEG_INFINITY;
    let mut attempts = 0usize;
    // Retry charge in units of one hyper-sample's cost; attempt k costs
    // 2^(k-1), so the budget is exhausted after ~log2(budget) attempts.
    let mut charged = 0usize;

    let mut sample_buf: Vec<f64> = Vec::with_capacity(n);
    let mut batch_buf: Vec<f64> = Vec::with_capacity(n);

    let (cause, last_maxima, fail_reason) = loop {
        // Draw m samples of size n (each through the batched source
        // interface); record each sample's maximum.
        let mut maxima = Vec::with_capacity(m);
        let mut first_draw: Option<f64> = None;
        let mut constant = true;
        let units_before = units_used;
        let health_before = health;
        let mut batches = 0u64;
        {
            let _simulate = telemetry.span(SpanKind::Simulate);
            for _ in 0..m {
                // Cooperative cancellation point: a hyper-sample is 300
                // simulations in the paper's setting, so checking between
                // its m samples bounds stop latency at one sample (~n
                // simulations) without touching the RNG stream.
                if let Some(token) = &ctx.cancel {
                    if token.is_cancelled() {
                        // Units drawn before the stop are still spent.
                        telemetry.counter(
                            names::VECTOR_PAIRS_SIMULATED,
                            (units_used - units_before) as u64,
                        );
                        telemetry.counter(names::SAMPLE_BATCHES, batches);
                        return Err(MaxPowerError::Interrupted {
                            reason: crate::supervise::StopReason::Cancelled,
                            hyper_samples: 0,
                        });
                    }
                }
                sample_buf.clear();
                draw_sample(
                    source,
                    config,
                    rng,
                    &mut health,
                    &mut units_used,
                    n,
                    &mut sample_buf,
                    &mut batch_buf,
                    &mut batches,
                )
                .inspect_err(|_| {
                    // Units drawn before the failure are still spent.
                    telemetry.counter(
                        names::VECTOR_PAIRS_SIMULATED,
                        (units_used - units_before) as u64,
                    );
                    telemetry.counter(names::SAMPLE_BATCHES, batches);
                })?;
                let mut sample_max = f64::NEG_INFINITY;
                for &p in sample_buf.iter() {
                    match first_draw {
                        None => first_draw = Some(p),
                        Some(f0) => {
                            if p != f0 {
                                constant = false;
                            }
                        }
                    }
                    all_draws.push(p);
                    sample_max = sample_max.max(p);
                }
                observed_max = observed_max.max(sample_max);
                maxima.push(sample_max);
            }
        }
        telemetry.counter(
            names::VECTOR_PAIRS_SIMULATED,
            (units_used - units_before) as u64,
        );
        telemetry.counter(names::SAMPLE_BATCHES, batches);
        emit_health_deltas(telemetry, &health, &health_before);
        attempts += 1;
        if attempts > 1 {
            telemetry.counter(names::MLE_RETRIES, 1);
        }
        charged = charged.saturating_add(1usize << (attempts - 1).min(63));

        // Degeneracy pre-check: identical sample maxima give the reversed-
        // Weibull likelihood no interior maximum, so don't pay for a fit
        // that must fail.
        let degenerate = maxima.windows(2).all(|w| w[0] == w[1]);
        let failure: MleError = if degenerate {
            health.degenerate_bailout = true;
            telemetry.counter(names::DEGENERATE_BAILOUTS, 1);
            MleError::DegenerateSample {
                reason: "all sample maxima identical",
            }
        } else {
            match fit_reversed_weibull_traced(&maxima, telemetry) {
                Ok(fit) => {
                    health.mle_retries = attempts - 1;
                    telemetry.gauge(names::HYPER_MU, fit.distribution.mu());
                    telemetry.gauge(names::HYPER_ALPHA, fit.distribution.alpha());
                    telemetry.gauge(names::HYPER_BETA, fit.distribution.beta());
                    let plain = point_estimate(&fit, config);
                    let estimate_mw = match config.bias_correction {
                        BiasCorrection::None => plain,
                        BiasCorrection::Jackknife => jackknife(&maxima, plain, config),
                    };
                    // The observed maximum is a hard lower bound on ω(F);
                    // the estimator never reports below what it has seen.
                    let estimate_mw = estimate_mw.max(observed_max);
                    let diagnostics = FitDiagnostics {
                        rung: EstimatorKind::Mle,
                        reason: FitReasonCode::Converged,
                        log_likelihood: Some(fit.mean_log_likelihood),
                        ks_distance: ks_statistic(&maxima, |x| fit.distribution.cdf(x)).ok(),
                        tail_shape: Some(fit.distribution.alpha()),
                    };
                    return Ok(HyperSample {
                        estimate_mw,
                        estimator: EstimatorKind::Mle,
                        fit: Some(fit),
                        sample_maxima: maxima,
                        observed_max,
                        units_used,
                        health,
                        diagnostics,
                    });
                }
                Err(e) => e,
            }
        };
        if constant {
            // Every raw draw identical: fresh draws cannot un-degenerate
            // the maxima, so retrying would only burn the budget.
            health.degenerate_bailout = true;
            break (failure, maxima, FitReasonCode::ConstantSource);
        }
        if charged >= config.mle_retry_budget {
            let reason = fit_reason(&failure);
            break (failure, maxima, reason);
        }
    };
    health.mle_retries = attempts - 1;
    match config.fallback {
        FallbackPolicy::ErrorOut => Err(MaxPowerError::HyperSampleFailed { cause, attempts }),
        FallbackPolicy::Degrade => {
            let _fallback = telemetry.span(SpanKind::Fallback);
            let degraded = degraded_hyper_sample(
                all_draws,
                last_maxima,
                observed_max,
                units_used,
                health,
                config,
                fail_reason,
            );
            telemetry.counter(
                match degraded.estimator {
                    EstimatorKind::Pot => names::FALLBACK_POT,
                    _ => names::FALLBACK_QUANTILE,
                },
                1,
            );
            Ok(degraded)
        }
    }
}

/// Maps the final MLE failure to the audit-trail reason code recorded in
/// [`FitDiagnostics`]. The constant-source case is decided by the caller
/// (it is a property of the raw draws, not of the fit error).
fn fit_reason(cause: &MleError) -> FitReasonCode {
    match cause {
        MleError::DegenerateSample { .. } => FitReasonCode::DegenerateMaxima,
        MleError::InsufficientData { .. } => FitReasonCode::InsufficientData,
        MleError::NoConvergence { .. } => FitReasonCode::NoConvergence,
        // Numeric / distribution-construction failures have no dedicated
        // code: they are optimizer-didn't-produce-a-usable-fit outcomes.
        MleError::Numeric(_) | MleError::Evt(_) => FitReasonCode::NoConvergence,
    }
}

/// Walks the fallback ladder over the pooled raw draws: POT/GPD endpoint,
/// then the distribution-free empirical quantile. Always succeeds — the
/// quantile rung is defined for any non-empty draw set. `reason` records
/// why the MLE rung failed; it is carried verbatim into the diagnostics of
/// whichever rung produces the estimate.
fn degraded_hyper_sample(
    all_draws: Vec<f64>,
    sample_maxima: Vec<f64>,
    observed_max: f64,
    units_used: usize,
    health: HyperHealth,
    config: &EstimationConfig,
    reason: FitReasonCode,
) -> HyperSample {
    // Rung 2: peaks-over-threshold. Tied *maxima* don't imply tied
    // excesses, so the GPD often still fits where the Weibull could not.
    // The endpoint is accepted only when it is finite and consistent with
    // the data (at or above the observed maximum).
    if let Ok(pot) = fit_pot(&all_draws, POT_FALLBACK_QUANTILE) {
        if let Some(endpoint) = pot.endpoint() {
            if endpoint.is_finite() && endpoint >= observed_max {
                let diagnostics = FitDiagnostics {
                    rung: EstimatorKind::Pot,
                    reason,
                    log_likelihood: Some(pot.mean_log_likelihood),
                    ks_distance: None,
                    tail_shape: Some(pot.gpd.xi()),
                };
                return HyperSample {
                    estimate_mw: endpoint,
                    estimator: EstimatorKind::Pot,
                    fit: None,
                    sample_maxima,
                    observed_max,
                    units_used,
                    health,
                    diagnostics,
                };
            }
        }
    }
    // Rung 3: empirical quantile at the finite-population level (or the
    // sample maximum for an infinite population). No extrapolation beyond
    // the data — a pure lower bound, but always defined.
    let q = match config.finite_population {
        Some(v) => 1.0 - 1.0 / v as f64,
        None => 1.0,
    };
    let estimate_mw = empirical_quantile(&all_draws, q).max(observed_max);
    HyperSample {
        estimate_mw,
        estimator: EstimatorKind::Quantile,
        fit: None,
        sample_maxima,
        observed_max,
        units_used,
        health,
        diagnostics: FitDiagnostics {
            rung: EstimatorKind::Quantile,
            reason,
            log_likelihood: None,
            ks_distance: None,
            tail_shape: None,
        },
    }
}

/// Type-7 interpolated empirical quantile (the same convention as the
/// quantile-baseline estimator). `data` must be non-empty and finite.
fn empirical_quantile(data: &[f64], q: f64) -> f64 {
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("valid readings are finite"));
    let h = q.clamp(0.0, 1.0) * (sorted.len() as f64 - 1.0);
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
}

/// The point estimate implied by a fit under the configuration's
/// population model (paper §3.4 for finite populations; raw `μ̂` otherwise).
fn point_estimate(fit: &WeibullFit, config: &EstimationConfig) -> f64 {
    match config.finite_population {
        // block_size = 1 is the paper's literal §3.4 estimator: the
        // (1 − 1/|V|) quantile of the fitted Weibull. The block-aware level
        // (1 − 1/|V|)^n is theoretically the exact image of the population
        // maximum, but its shallower extrapolation inherits the fitted
        // tail's downward bias; empirically (see the estimator ablation)
        // the paper's variant is the better-centred estimator, exactly as
        // the authors report.
        Some(v) => finite_population_maximum(&fit.distribution, v, 1)
            .expect("population size validated >= 2"),
        None => fit.mu_hat(),
    }
}

/// Delete-one jackknife: `θ_J = m·θ̂ − (m−1)·mean(θ̂₋ᵢ)`. Requires every
/// leave-one-out refit to succeed; otherwise returns the plain estimate
/// (jackknife with missing replicates would itself be biased).
fn jackknife(maxima: &[f64], plain: f64, config: &EstimationConfig) -> f64 {
    let m = maxima.len();
    let mut loo_sum = 0.0;
    let mut loo = Vec::with_capacity(m - 1);
    for skip in 0..m {
        loo.clear();
        loo.extend(
            maxima
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, &x)| x),
        );
        match fit_reversed_weibull(&loo) {
            Ok(fit) => loo_sum += point_estimate(&fit, config),
            Err(_) => return plain,
        }
    }
    let m = m as f64;
    m * plain - (m - 1.0) * (loo_sum / m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FnSource;
    use mpe_evt::ReversedWeibull;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn weibull_source(alpha: f64, beta: f64, mu: f64) -> impl FnMut(&mut dyn RngCore) -> f64 {
        move |rng: &mut dyn RngCore| {
            let r = rng;
            let u: f64 = r.gen_range(1e-12..1.0f64);
            mu - (-u.ln() / beta).powf(1.0 / alpha)
        }
    }

    #[test]
    fn hyper_sample_estimates_endpoint() {
        // Parent with endpoint 10 and smooth tail (alpha 3): maxima of 30
        // concentrate near 10; the hyper-sample estimate should land close.
        let mut source = FnSource::new(weibull_source(3.0, 1.0, 10.0));
        let config = EstimationConfig::default();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut errs = Vec::new();
        for _ in 0..20 {
            let h = generate_hyper_sample(&mut source, &HyperSampleContext::new(&config), &mut rng)
                .unwrap();
            assert_eq!(h.units_used, 300);
            assert_eq!(h.sample_maxima.len(), 10);
            assert_eq!(h.estimator, EstimatorKind::Mle);
            assert!(h.fit.is_some());
            assert_eq!(h.health, HyperHealth::default());
            assert!(h.estimate_mw >= h.observed_max);
            errs.push((h.estimate_mw - 10.0).abs());
        }
        errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = errs[errs.len() / 2];
        assert!(median < 0.5, "median endpoint error {median}");
    }

    #[test]
    fn finite_population_estimate_below_mu_hat() {
        let mut rng = SmallRng::seed_from_u64(2);
        // Build identical draws for two configs by re-seeding.
        let mut run = |finite: Option<u64>| {
            let mut source = FnSource::new(weibull_source(3.0, 1.0, 10.0));
            let config = EstimationConfig {
                finite_population: finite,
                ..EstimationConfig::default()
            };
            let mut local_rng = SmallRng::seed_from_u64(77);
            let _ = &mut rng;
            generate_hyper_sample(
                &mut source,
                &HyperSampleContext::new(&config),
                &mut local_rng,
            )
            .unwrap()
        };
        let infinite = run(None);
        let finite = run(Some(10_000));
        // Same draws, so same fit; the finite-population quantile is below
        // the endpoint (unless clamped by the observed max).
        assert!(finite.estimate_mw <= infinite.estimate_mw);
    }

    #[test]
    fn constant_source_bails_after_one_attempt_under_error_out() {
        // Constant power: every draw identical, so the pre-check proves no
        // amount of retrying can help — exactly one attempt is spent
        // (the seed burned MLE_RETRIES × n × m = 1500 draws here).
        let mut source = FnSource::new(|_: &mut dyn RngCore| 5.0);
        let config = EstimationConfig {
            fallback: FallbackPolicy::ErrorOut,
            ..EstimationConfig::default()
        };
        let mut rng = SmallRng::seed_from_u64(3);
        let err = generate_hyper_sample(&mut source, &HyperSampleContext::new(&config), &mut rng);
        assert!(matches!(
            err,
            Err(MaxPowerError::HyperSampleFailed { attempts: 1, .. })
        ));
    }

    #[test]
    fn constant_source_degrades_to_quantile() {
        // Under the default Degrade policy the same source yields the
        // empirical-quantile fallback: estimate = the constant itself,
        // after a single attempt's worth of draws.
        let mut source = FnSource::new(|_: &mut dyn RngCore| 5.0);
        let config = EstimationConfig::default();
        let mut rng = SmallRng::seed_from_u64(3);
        let h = generate_hyper_sample(&mut source, &HyperSampleContext::new(&config), &mut rng)
            .unwrap();
        assert_eq!(h.estimate_mw, 5.0);
        assert_eq!(h.estimator, EstimatorKind::Quantile);
        assert!(h.fit.is_none());
        assert_eq!(h.units_used, 300);
        assert!(h.health.degenerate_bailout);
        assert_eq!(h.health.mle_retries, 0);
    }

    #[test]
    fn units_used_accounts_retries() {
        // Degenerate-but-not-constant first attempt (every sample of 30
        // contains a 5.0, so all maxima tie, but raw draws vary): the
        // pre-check skips the doomed fit, the retry loop draws again, and
        // the second attempt succeeds with all units counted.
        let truth = ReversedWeibull::new(3.0, 1.0, 10.0).unwrap();
        let mut calls = 0usize;
        let mut source = FnSource::new(move |rng: &mut dyn RngCore| {
            calls += 1;
            if calls <= 300 {
                if calls.is_multiple_of(2) {
                    5.0
                } else {
                    1.0
                }
            } else {
                let r = rng;
                let u: f64 = r.gen_range(1e-12..1.0f64);
                truth.mu() - (-u.ln()).powf(1.0 / truth.alpha())
            }
        });
        let config = EstimationConfig::default();
        let mut rng = SmallRng::seed_from_u64(4);
        let h = generate_hyper_sample(&mut source, &HyperSampleContext::new(&config), &mut rng)
            .unwrap();
        assert_eq!(h.units_used, 600);
        assert_eq!(h.estimator, EstimatorKind::Mle);
        assert_eq!(h.health.mle_retries, 1);
        assert!(h.health.degenerate_bailout);
    }

    #[test]
    fn retry_budget_is_exponential() {
        // Maxima degenerate forever but draws vary: the exponential charge
        // (1+2+4+8 = 15) stops the loop after 4 attempts under the default
        // budget of 15 hyper-sample costs.
        let run = |budget: usize| {
            let mut toggle = false;
            let mut source = FnSource::new(move |_: &mut dyn RngCore| {
                toggle = !toggle;
                if toggle {
                    1.0
                } else {
                    5.0
                }
            });
            let config = EstimationConfig {
                fallback: FallbackPolicy::ErrorOut,
                mle_retry_budget: budget,
                ..EstimationConfig::default()
            };
            let mut rng = SmallRng::seed_from_u64(5);
            generate_hyper_sample(&mut source, &HyperSampleContext::new(&config), &mut rng)
        };
        match run(15) {
            Err(MaxPowerError::HyperSampleFailed { attempts, .. }) => assert_eq!(attempts, 4),
            other => panic!("expected HyperSampleFailed, got {other:?}"),
        }
        match run(1) {
            Err(MaxPowerError::HyperSampleFailed { attempts, .. }) => assert_eq!(attempts, 1),
            other => panic!("expected HyperSampleFailed, got {other:?}"),
        }
    }

    #[test]
    fn nan_reading_fails_fast_under_fail_policy() {
        let mut calls = 0usize;
        let mut source = FnSource::new(move |rng: &mut dyn RngCore| {
            calls += 1;
            if calls == 10 {
                f64::NAN
            } else {
                let r = rng;
                r.gen::<f64>()
            }
        });
        let config = EstimationConfig::default();
        let mut rng = SmallRng::seed_from_u64(6);
        let err = generate_hyper_sample(&mut source, &HyperSampleContext::new(&config), &mut rng);
        match err {
            Err(MaxPowerError::InvalidReading { value_mw }) => assert!(value_mw.is_nan()),
            other => panic!("expected InvalidReading, got {other:?}"),
        }
    }

    #[test]
    fn skip_policy_discards_and_accounts() {
        // Every 7th reading is NaN; Skip discards them, draws replacements,
        // and counts each discarded reading as a consumed unit.
        let mut calls = 0usize;
        let mut source = FnSource::new(move |rng: &mut dyn RngCore| {
            calls += 1;
            if calls.is_multiple_of(7) {
                f64::NAN
            } else {
                let r = rng;
                5.0 + r.gen::<f64>()
            }
        });
        let config = EstimationConfig {
            sample_policy: SamplePolicy::Skip {
                max_discarded: 1000,
            },
            ..EstimationConfig::default()
        };
        let mut rng = SmallRng::seed_from_u64(7);
        let h = generate_hyper_sample(&mut source, &HyperSampleContext::new(&config), &mut rng)
            .unwrap();
        assert!(h.health.samples_discarded > 0);
        assert_eq!(h.units_used, 300 + h.health.samples_discarded);
        assert!(h.sample_maxima.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn skip_policy_exhausts_at_cap() {
        let mut source = FnSource::new(|_: &mut dyn RngCore| f64::NAN);
        let config = EstimationConfig {
            sample_policy: SamplePolicy::Skip { max_discarded: 5 },
            ..EstimationConfig::default()
        };
        let mut rng = SmallRng::seed_from_u64(8);
        let err = generate_hyper_sample(&mut source, &HyperSampleContext::new(&config), &mut rng);
        assert!(matches!(
            err,
            Err(MaxPowerError::SamplePolicyExhausted {
                policy: "skip",
                count: 6,
                limit: 5,
            })
        ));
    }

    #[test]
    fn min_reading_floor_rejects_negatives() {
        let mut calls = 0usize;
        let mut source = FnSource::new(move |rng: &mut dyn RngCore| {
            calls += 1;
            if calls.is_multiple_of(11) {
                -3.0
            } else {
                let r = rng;
                5.0 + r.gen::<f64>()
            }
        });
        let config = EstimationConfig {
            min_reading_mw: 0.0,
            sample_policy: SamplePolicy::Retry { max_attempts: 3 },
            ..EstimationConfig::default()
        };
        let mut rng = SmallRng::seed_from_u64(9);
        let h = generate_hyper_sample(&mut source, &HyperSampleContext::new(&config), &mut rng)
            .unwrap();
        assert!(h.health.samples_discarded > 0);
        assert_eq!(h.health.sample_retries, h.health.samples_discarded);
        assert!(h.sample_maxima.iter().all(|&x| x >= 0.0));
        assert_eq!(h.units_used, 300 + h.health.samples_discarded);
    }

    #[test]
    fn jackknife_runs_and_stays_sane() {
        // The jackknife's bias-variance tradeoff is data-dependent (it
        // helps on the gate-level power populations of the estimator
        // ablation, hurts on some synthetic parents), so the unit test
        // checks the mechanical contract only: finite estimates that never
        // fall below the observed maximum, on the same draws as the plain
        // estimator.
        use crate::config::BiasCorrection;
        let run = |correction: BiasCorrection| -> Vec<HyperSample> {
            let mut source = FnSource::new(weibull_source(3.0, 1.0, 10.0));
            let config = EstimationConfig {
                bias_correction: correction,
                ..EstimationConfig::default()
            };
            let mut rng = SmallRng::seed_from_u64(9);
            (0..10)
                .map(|_| {
                    generate_hyper_sample(&mut source, &HyperSampleContext::new(&config), &mut rng)
                        .unwrap()
                })
                .collect()
        };
        let plain = run(BiasCorrection::None);
        let jack = run(BiasCorrection::Jackknife);
        for (p, j) in plain.iter().zip(&jack) {
            assert!(j.estimate_mw.is_finite());
            assert!(j.estimate_mw >= j.observed_max);
            // Same RNG stream, same draws: the underlying fits agree.
            assert_eq!(p.sample_maxima, j.sample_maxima);
        }
        // The correction actually does something on at least one replicate.
        assert!(plain
            .iter()
            .zip(&jack)
            .any(|(p, j)| (p.estimate_mw - j.estimate_mw).abs() > 1e-9));
    }

    #[test]
    fn estimate_never_below_observed_max() {
        // Heavy-discrete source where MLE could undershoot: clamping to the
        // observed max keeps the estimate sane.
        let mut source = FnSource::new(|rng: &mut dyn RngCore| {
            let r = rng;
            let u: f64 = r.gen();
            if u > 0.999 {
                100.0
            } else {
                u
            }
        });
        let config = EstimationConfig::default();
        let mut rng = SmallRng::seed_from_u64(5);
        if let Ok(h) =
            generate_hyper_sample(&mut source, &HyperSampleContext::new(&config), &mut rng)
        {
            assert!(h.estimate_mw >= h.observed_max);
        }
    }

    #[test]
    fn empirical_quantile_matches_convention() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(empirical_quantile(&data, 0.0), 1.0);
        assert_eq!(empirical_quantile(&data, 0.5), 3.0);
        assert_eq!(empirical_quantile(&data, 1.0), 5.0);
        assert_eq!(empirical_quantile(&data, 0.25), 2.0);
    }
}
