//! Hyper-sample generation — the paper's Figure 3.
//!
//! One hyper-sample is one full MLE-based estimate of the maximum power:
//!
//! 1. draw `m` samples of `n` units each from the power source;
//! 2. take each sample's maximum `p_{i,MAX}` (Eqn 3.1);
//! 3. fit the generalized reversed Weibull to the `m` maxima by profile
//!    maximum likelihood;
//! 4. the estimate is the fitted endpoint `μ̂` — or, for a finite
//!    population `|V|`, the `(1 − 1/|V|)` quantile of the fitted Weibull
//!    (the "finite population estimator" of §3.4).

use rand::RngCore;

use mpe_evt::tail::finite_population_maximum;
use mpe_mle::profile::{fit_reversed_weibull, WeibullFit};
use mpe_mle::MleError;

use crate::config::{BiasCorrection, EstimationConfig};
use crate::error::MaxPowerError;
use crate::source::PowerSource;

/// One hyper-sample: a single MLE-based maximum-power estimate
/// (the paper's `P̂_{i,MAX}`).
#[derive(Debug, Clone)]
pub struct HyperSample {
    /// The estimate (mW): `μ̂`, or the finite-population quantile when
    /// [`EstimationConfig::finite_population`] is set.
    pub estimate_mw: f64,
    /// The underlying Weibull fit (shape, scale, endpoint, likelihood).
    pub fit: WeibullFit,
    /// The raw sample maxima the fit was computed from (`m` values).
    pub sample_maxima: Vec<f64>,
    /// Largest single unit power observed while building this hyper-sample
    /// (a free lower bound on the maximum).
    pub observed_max: f64,
    /// Vector pairs consumed (`n × m`, plus any MLE retries).
    pub units_used: usize,
}

/// How many times a degenerate MLE is retried with fresh draws before
/// giving up. Degeneracy is rare (it needs near-identical sample maxima)
/// but possible on tiny populations.
const MLE_RETRIES: usize = 5;

/// Generates one hyper-sample from the source (paper Figure 3).
///
/// # Errors
///
/// * propagates source/simulation failures;
/// * [`MaxPowerError::HyperSampleFailed`] if the MLE stays degenerate after
///   five fresh attempts.
pub fn generate_hyper_sample(
    source: &mut dyn PowerSource,
    config: &EstimationConfig,
    rng: &mut dyn RngCore,
) -> Result<HyperSample, MaxPowerError> {
    let n = config.sample_size;
    let m = config.samples_per_hyper;
    let mut units_used = 0usize;
    let mut last_err: Option<MleError> = None;

    for _attempt in 0..MLE_RETRIES {
        // Draw m samples of size n; record each sample's maximum.
        let mut maxima = Vec::with_capacity(m);
        let mut observed_max = f64::NEG_INFINITY;
        for _ in 0..m {
            let mut sample_max = f64::NEG_INFINITY;
            for _ in 0..n {
                let p = source.sample(rng)?;
                units_used += 1;
                sample_max = sample_max.max(p);
            }
            observed_max = observed_max.max(sample_max);
            maxima.push(sample_max);
        }
        match fit_reversed_weibull(&maxima) {
            Ok(fit) => {
                let plain = point_estimate(&fit, config);
                let estimate_mw = match config.bias_correction {
                    BiasCorrection::None => plain,
                    BiasCorrection::Jackknife => jackknife(&maxima, plain, config),
                };
                // The observed maximum is a hard lower bound on ω(F); the
                // estimator never reports below what it has already seen.
                let estimate_mw = estimate_mw.max(observed_max);
                return Ok(HyperSample {
                    estimate_mw,
                    fit,
                    sample_maxima: maxima,
                    observed_max,
                    units_used,
                });
            }
            Err(e) => last_err = Some(e),
        }
    }
    Err(MaxPowerError::HyperSampleFailed {
        cause: last_err.expect("loop ran at least once"),
        attempts: MLE_RETRIES,
    })
}

/// The point estimate implied by a fit under the configuration's
/// population model (paper §3.4 for finite populations; raw `μ̂` otherwise).
fn point_estimate(fit: &WeibullFit, config: &EstimationConfig) -> f64 {
    match config.finite_population {
        // block_size = 1 is the paper's literal §3.4 estimator: the
        // (1 − 1/|V|) quantile of the fitted Weibull. The block-aware level
        // (1 − 1/|V|)^n is theoretically the exact image of the population
        // maximum, but its shallower extrapolation inherits the fitted
        // tail's downward bias; empirically (see the estimator ablation)
        // the paper's variant is the better-centred estimator, exactly as
        // the authors report.
        Some(v) => finite_population_maximum(&fit.distribution, v, 1)
            .expect("population size validated >= 2"),
        None => fit.mu_hat(),
    }
}

/// Delete-one jackknife: `θ_J = m·θ̂ − (m−1)·mean(θ̂₋ᵢ)`. Requires every
/// leave-one-out refit to succeed; otherwise returns the plain estimate
/// (jackknife with missing replicates would itself be biased).
fn jackknife(maxima: &[f64], plain: f64, config: &EstimationConfig) -> f64 {
    let m = maxima.len();
    let mut loo_sum = 0.0;
    let mut loo = Vec::with_capacity(m - 1);
    for skip in 0..m {
        loo.clear();
        loo.extend(
            maxima
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, &x)| x),
        );
        match fit_reversed_weibull(&loo) {
            Ok(fit) => loo_sum += point_estimate(&fit, config),
            Err(_) => return plain,
        }
    }
    let m = m as f64;
    m * plain - (m - 1.0) * (loo_sum / m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FnSource;
    use mpe_evt::ReversedWeibull;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn weibull_source(alpha: f64, beta: f64, mu: f64) -> impl FnMut(&mut dyn RngCore) -> f64 {
        move |rng: &mut dyn RngCore| {
            let r = rng;
            let u: f64 = r.gen_range(1e-12..1.0f64);
            mu - (-u.ln() / beta).powf(1.0 / alpha)
        }
    }

    #[test]
    fn hyper_sample_estimates_endpoint() {
        // Parent with endpoint 10 and smooth tail (alpha 3): maxima of 30
        // concentrate near 10; the hyper-sample estimate should land close.
        let mut source = FnSource::new(weibull_source(3.0, 1.0, 10.0));
        let config = EstimationConfig::default();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut errs = Vec::new();
        for _ in 0..20 {
            let h = generate_hyper_sample(&mut source, &config, &mut rng).unwrap();
            assert_eq!(h.units_used, 300);
            assert_eq!(h.sample_maxima.len(), 10);
            assert!(h.estimate_mw >= h.observed_max);
            errs.push((h.estimate_mw - 10.0).abs());
        }
        errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = errs[errs.len() / 2];
        assert!(median < 0.5, "median endpoint error {median}");
    }

    #[test]
    fn finite_population_estimate_below_mu_hat() {
        let mut rng = SmallRng::seed_from_u64(2);
        // Build identical draws for two configs by re-seeding.
        let mut run = |finite: Option<u64>| {
            let mut source = FnSource::new(weibull_source(3.0, 1.0, 10.0));
            let mut config = EstimationConfig::default();
            config.finite_population = finite;
            let mut local_rng = SmallRng::seed_from_u64(77);
            let _ = &mut rng;
            generate_hyper_sample(&mut source, &config, &mut local_rng).unwrap()
        };
        let infinite = run(None);
        let finite = run(Some(10_000));
        // Same draws, so same fit; the finite-population quantile is below
        // the endpoint (unless clamped by the observed max).
        assert!(finite.estimate_mw <= infinite.estimate_mw);
    }

    #[test]
    fn degenerate_source_fails_cleanly() {
        // Constant power: sample maxima are all identical; MLE must fail.
        let mut source = FnSource::new(|_: &mut dyn RngCore| 5.0);
        let config = EstimationConfig::default();
        let mut rng = SmallRng::seed_from_u64(3);
        let err = generate_hyper_sample(&mut source, &config, &mut rng);
        assert!(matches!(
            err,
            Err(MaxPowerError::HyperSampleFailed { attempts: 5, .. })
        ));
    }

    #[test]
    fn units_used_accounts_retries() {
        // A source that is degenerate at first, then becomes healthy: the
        // retry loop should succeed and count all units drawn.
        let truth = ReversedWeibull::new(3.0, 1.0, 10.0).unwrap();
        let mut calls = 0usize;
        let mut source = FnSource::new(move |rng: &mut dyn RngCore| {
            calls += 1;
            if calls <= 300 {
                5.0 // first full hyper-sample worth of draws is constant
            } else {
                let r = rng;
                let u: f64 = r.gen_range(1e-12..1.0f64);
                truth.mu() - (-u.ln()).powf(1.0 / truth.alpha())
            }
        });
        let config = EstimationConfig::default();
        let mut rng = SmallRng::seed_from_u64(4);
        let h = generate_hyper_sample(&mut source, &config, &mut rng).unwrap();
        assert_eq!(h.units_used, 600);
    }

    #[test]
    fn jackknife_runs_and_stays_sane() {
        // The jackknife's bias-variance tradeoff is data-dependent (it
        // helps on the gate-level power populations of the estimator
        // ablation, hurts on some synthetic parents), so the unit test
        // checks the mechanical contract only: finite estimates that never
        // fall below the observed maximum, on the same draws as the plain
        // estimator.
        use crate::config::BiasCorrection;
        let run = |correction: BiasCorrection| -> Vec<HyperSample> {
            let mut source = FnSource::new(weibull_source(3.0, 1.0, 10.0));
            let mut config = EstimationConfig::default();
            config.bias_correction = correction;
            let mut rng = SmallRng::seed_from_u64(9);
            (0..10)
                .map(|_| generate_hyper_sample(&mut source, &config, &mut rng).unwrap())
                .collect()
        };
        let plain = run(BiasCorrection::None);
        let jack = run(BiasCorrection::Jackknife);
        for (p, j) in plain.iter().zip(&jack) {
            assert!(j.estimate_mw.is_finite());
            assert!(j.estimate_mw >= j.observed_max);
            // Same RNG stream, same draws: the underlying fits agree.
            assert_eq!(p.sample_maxima, j.sample_maxima);
        }
        // The correction actually does something on at least one replicate.
        assert!(plain
            .iter()
            .zip(&jack)
            .any(|(p, j)| (p.estimate_mw - j.estimate_mw).abs() > 1e-9));
    }

    #[test]
    fn estimate_never_below_observed_max() {
        // Heavy-discrete source where MLE could undershoot: clamping to the
        // observed max keeps the estimate sane.
        let mut source = FnSource::new(|rng: &mut dyn RngCore| {
            let r = rng;
            let u: f64 = r.gen();
            if u > 0.999 {
                100.0
            } else {
                u
            }
        });
        let config = EstimationConfig::default();
        let mut rng = SmallRng::seed_from_u64(5);
        if let Ok(h) = generate_hyper_sample(&mut source, &config, &mut rng) {
            assert!(h.estimate_mw >= h.observed_max);
        }
    }
}
