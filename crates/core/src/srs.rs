//! Simple random sampling (SRS) — the baseline the paper compares against.
//!
//! SRS estimates the maximum power as the largest power among `x` randomly
//! sampled units. It is unbiased *downward* (it can never exceed the true
//! maximum) but gives no confidence statement, and its cost to reach a
//! qualified unit grows like `log(1−confidence)/log(1−Y)` where `Y` is the
//! tiny fraction of near-maximum units — the analysis in the paper's
//! Section IV that motivates the whole EVT machinery.

use rand::RngCore;

use crate::error::MaxPowerError;
use crate::source::PowerSource;

/// Result of a simple-random-sampling run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SrsEstimate {
    /// The SRS estimate: the largest sampled power (mW).
    pub estimate_mw: f64,
    /// Units sampled.
    pub units_used: usize,
}

/// Estimates the maximum power by sampling `units` random units and taking
/// the largest (the paper's SRS-2500/10K/20K baselines).
///
/// # Errors
///
/// Returns [`MaxPowerError::InvalidConfig`] for `units == 0` and propagates
/// source failures.
///
/// # Example
///
/// ```
/// use maxpower::{srs_max_estimate, FnSource};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), maxpower::MaxPowerError> {
/// let mut source = FnSource::new(|rng: &mut dyn rand::RngCore| {
///     let mut buf = [0u8; 1];
///     rng.fill_bytes(&mut buf);
///     buf[0] as f64 / 255.0
/// });
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let r = srs_max_estimate(&mut source, 2_500, &mut rng)?;
/// assert!(r.estimate_mw <= 1.0);
/// assert_eq!(r.units_used, 2_500);
/// # Ok(())
/// # }
/// ```
pub fn srs_max_estimate(
    source: &mut dyn PowerSource,
    units: usize,
    rng: &mut dyn RngCore,
) -> Result<SrsEstimate, MaxPowerError> {
    if units == 0 {
        return Err(MaxPowerError::InvalidConfig {
            message: "SRS needs at least one unit".to_string(),
        });
    }
    let mut best = f64::NEG_INFINITY;
    for _ in 0..units {
        best = best.max(source.sample(rng)?);
    }
    Ok(SrsEstimate {
        estimate_mw: best,
        units_used: units,
    })
}

/// The paper's theoretical SRS cost: the number of units needed so that at
/// least one "qualified unit" (power within the error band of the maximum)
/// is sampled with probability `confidence`, given the qualified fraction
/// `y`:
///
/// `x = ln(1 − confidence) / ln(1 − y)`
///
/// Returns `f64::INFINITY` when `y ≤ 0` and `1.0` when `y ≥ 1`.
///
/// # Errors
///
/// Returns [`MaxPowerError::InvalidConfig`] unless `confidence ∈ (0, 1)`.
pub fn srs_theoretical_units(y: f64, confidence: f64) -> Result<f64, MaxPowerError> {
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(MaxPowerError::InvalidConfig {
            message: format!("confidence must be in (0, 1), got {confidence}"),
        });
    }
    if y <= 0.0 {
        return Ok(f64::INFINITY);
    }
    if y >= 1.0 {
        return Ok(1.0);
    }
    Ok((1.0 - confidence).ln() / (1.0 - y).ln())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FnSource;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn srs_underestimates_bounded_source() {
        let mut source = FnSource::new(|rng: &mut dyn RngCore| {
            let r = rng;
            r.gen::<f64>() * 10.0
        });
        let mut rng = SmallRng::seed_from_u64(1);
        let r = srs_max_estimate(&mut source, 1000, &mut rng).unwrap();
        assert!(r.estimate_mw < 10.0);
        assert!(r.estimate_mw > 9.5); // 1000 uniforms get close
    }

    #[test]
    fn more_units_do_not_decrease_estimate_in_expectation() {
        let run = |units: usize, seed: u64| {
            let mut source = FnSource::new(|rng: &mut dyn RngCore| {
                let r = rng;
                r.gen::<f64>()
            });
            let mut rng = SmallRng::seed_from_u64(seed);
            srs_max_estimate(&mut source, units, &mut rng)
                .unwrap()
                .estimate_mw
        };
        let small: f64 = (0..30).map(|s| run(10, s)).sum::<f64>() / 30.0;
        let large: f64 = (0..30).map(|s| run(1000, s)).sum::<f64>() / 30.0;
        assert!(large > small);
    }

    #[test]
    fn zero_units_rejected() {
        let mut source = FnSource::new(|_: &mut dyn RngCore| 1.0);
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(srs_max_estimate(&mut source, 0, &mut rng).is_err());
    }

    #[test]
    fn theoretical_units_matches_paper_example() {
        // Paper: Y < 0.0001 leads to x > 23,000 at 90% confidence.
        let x = srs_theoretical_units(0.0001, 0.9).unwrap();
        assert!(x > 23_000.0, "{x}");
        // And the specific Table 1 row for C1355: Y = 0.0001 -> 23024.
        assert!((x - 23_025.0).abs() < 5.0, "{x}");
    }

    #[test]
    fn theoretical_units_edge_cases() {
        assert_eq!(srs_theoretical_units(0.0, 0.9).unwrap(), f64::INFINITY);
        assert_eq!(srs_theoretical_units(1.0, 0.9).unwrap(), 1.0);
        assert!(srs_theoretical_units(0.5, 0.0).is_err());
        assert!(srs_theoretical_units(0.5, 1.0).is_err());
    }

    #[test]
    fn empirical_hit_rate_matches_theory() {
        // Sample x units from a population with qualified fraction y; the
        // hit probability should be ~confidence.
        let y = 0.01;
        let confidence = 0.9;
        let x = srs_theoretical_units(y, confidence).unwrap().ceil() as usize;
        let mut rng = SmallRng::seed_from_u64(3);
        let trials = 2000;
        let mut hits = 0;
        for _ in 0..trials {
            let mut found = false;
            for _ in 0..x {
                if rng.gen::<f64>() < y {
                    found = true;
                    break;
                }
            }
            if found {
                hits += 1;
            }
        }
        let rate = hits as f64 / trials as f64;
        assert!((rate - confidence).abs() < 0.03, "hit rate {rate}");
    }
}
