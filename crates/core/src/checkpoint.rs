//! Checkpoint/resume for long estimation runs.
//!
//! A gate-level run can spend hours inside the simulator; losing the whole
//! run to a crash at hyper-sample 180 of 200 is unacceptable in a CI or
//! overnight setting. A [`Checkpoint`] serializes the *estimator* state —
//! the accumulated hyper-sample estimates, their provenance, the
//! convergence history, the unit ledger and the [`RunHealth`] counters —
//! after every hyper-sample, so a killed run resumes from the last
//! completed iteration instead of from scratch.
//!
//! Determinism contract: resumed runs reproduce the uninterrupted run
//! *exactly* when driven through
//! [`MaxPowerEstimator::run_with_checkpoint`](crate::MaxPowerEstimator::run_with_checkpoint),
//! because that entry point derives an independent RNG stream per
//! hyper-sample index from the master seed (the underlying generator's
//! internal state never needs to be serialized). The checkpoint pins the
//! master seed and a fingerprint of the effective configuration; resuming
//! against a different seed or config is refused with
//! [`MaxPowerError::CheckpointMismatch`].
//!
//! Non-finite values (`±∞` relative half-widths before `k = 2`, the
//! `-∞` initial observed maximum) cannot survive a JSON round-trip, so the
//! serialized form stores them as `None` and the engine restores the
//! sentinels on load.

use serde::{Deserialize, Serialize};

use crate::config::EstimationConfig;
use crate::error::MaxPowerError;
use crate::estimator::EstimateHistoryEntry;
use crate::health::{EstimatorKind, RunHealth};
use crate::report::TelemetrySummary;

/// Version of the checkpoint schema; bumped on incompatible change.
///
/// v2 added the optional `telemetry` block (cumulative per-phase durations
/// and work counters), so a resumed run's telemetry reflects total work
/// across segments rather than just the final one.
pub const CHECKPOINT_VERSION: u32 = 2;

/// One serialized row of the convergence history.
///
/// `relative_half_width` is `None` where the live value is non-finite
/// (before `k = 2`, or under the zero-mean guard).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointHistoryEntry {
    /// Hyper-samples accumulated (`k`).
    pub k: usize,
    /// Running mean estimate (mW).
    pub mean_mw: f64,
    /// Relative half-width; `None` encodes "undefined/infinite".
    pub relative_half_width: Option<f64>,
    /// Cumulative units consumed.
    pub units_used: usize,
}

impl From<&EstimateHistoryEntry> for CheckpointHistoryEntry {
    fn from(e: &EstimateHistoryEntry) -> Self {
        CheckpointHistoryEntry {
            k: e.k,
            mean_mw: e.mean_mw,
            relative_half_width: e
                .relative_half_width
                .is_finite()
                .then_some(e.relative_half_width),
            units_used: e.units_used,
        }
    }
}

impl From<&CheckpointHistoryEntry> for EstimateHistoryEntry {
    fn from(e: &CheckpointHistoryEntry) -> Self {
        EstimateHistoryEntry {
            k: e.k,
            mean_mw: e.mean_mw,
            relative_half_width: e.relative_half_width.unwrap_or(f64::INFINITY),
            units_used: e.units_used,
        }
    }
}

/// Serialized estimator state after a completed hyper-sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Schema version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Fingerprint of the *effective* configuration (after the source's
    /// population size is folded in); resuming under a different
    /// configuration is refused.
    pub config_fingerprint: u64,
    /// The master seed the per-hyper-sample RNG streams derive from.
    pub master_seed: u64,
    /// Completed hyper-sample estimates (mW).
    pub hyper_estimates: Vec<f64>,
    /// Which estimator produced each hyper-sample.
    pub hyper_estimators: Vec<EstimatorKind>,
    /// Convergence history, one row per completed hyper-sample.
    pub history: Vec<CheckpointHistoryEntry>,
    /// Units consumed so far.
    pub units_used: usize,
    /// Largest reading observed so far (mW); `None` encodes "none yet".
    pub observed_max_mw: Option<f64>,
    /// Aggregated fault counters so far.
    pub health: RunHealth,
    /// Cumulative telemetry (phase durations, work counters) across all
    /// run segments so far; absent when the run had telemetry disabled.
    #[serde(default)]
    pub telemetry: Option<TelemetrySummary>,
}

impl Checkpoint {
    /// Completed hyper-samples in this checkpoint.
    pub fn hyper_samples(&self) -> usize {
        self.hyper_estimates.len()
    }

    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("checkpoint is always serializable")
    }

    /// Parses a checkpoint from JSON.
    ///
    /// # Errors
    ///
    /// [`MaxPowerError::CheckpointMismatch`] on malformed input.
    pub fn from_json(s: &str) -> Result<Checkpoint, MaxPowerError> {
        serde_json::from_str(s).map_err(|e| MaxPowerError::CheckpointMismatch {
            message: format!("malformed checkpoint JSON: {e}"),
        })
    }

    /// Checks that this checkpoint can resume a run with the given
    /// effective-config fingerprint and master seed, and that it is
    /// internally consistent.
    ///
    /// # Errors
    ///
    /// [`MaxPowerError::CheckpointMismatch`] naming the first violation.
    pub fn verify(&self, config_fingerprint: u64, master_seed: u64) -> Result<(), MaxPowerError> {
        let fail = |message: String| Err(MaxPowerError::CheckpointMismatch { message });
        if self.version != CHECKPOINT_VERSION {
            return fail(format!(
                "checkpoint version {} != supported {CHECKPOINT_VERSION}",
                self.version
            ));
        }
        if self.config_fingerprint != config_fingerprint {
            return fail(format!(
                "config fingerprint {:#018x} != current {:#018x} \
                 (the run was checkpointed under a different configuration)",
                self.config_fingerprint, config_fingerprint
            ));
        }
        if self.master_seed != master_seed {
            return fail(format!(
                "master seed {} != requested {master_seed} \
                 (resuming under a different seed would break determinism)",
                self.master_seed
            ));
        }
        let k = self.hyper_estimates.len();
        if self.hyper_estimators.len() != k || self.history.len() != k {
            return fail(format!(
                "inconsistent lengths: {k} estimates, {} estimators, {} history rows",
                self.hyper_estimators.len(),
                self.history.len()
            ));
        }
        if self.hyper_estimates.iter().any(|e| !e.is_finite()) {
            return fail("non-finite hyper-sample estimate".to_string());
        }
        Ok(())
    }
}

/// FNV-1a fingerprint of a configuration's canonical (`Debug`) rendering.
/// Stable for a given build of the library; any field change — including
/// policy or budget changes that alter the draw sequence — changes it.
pub fn config_fingerprint(config: &EstimationConfig) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in format!("{config:?}").bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> Checkpoint {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            config_fingerprint: 42,
            master_seed: 7,
            hyper_estimates: vec![10.1, 10.3],
            hyper_estimators: vec![EstimatorKind::Mle, EstimatorKind::Mle],
            history: vec![
                CheckpointHistoryEntry {
                    k: 1,
                    mean_mw: 10.1,
                    relative_half_width: None,
                    units_used: 300,
                },
                CheckpointHistoryEntry {
                    k: 2,
                    mean_mw: 10.2,
                    relative_half_width: Some(0.06),
                    units_used: 600,
                },
            ],
            units_used: 600,
            observed_max_mw: Some(9.9),
            health: RunHealth::default(),
            telemetry: None,
        }
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let cp = sample_checkpoint();
        let back = Checkpoint::from_json(&cp.to_json()).unwrap();
        assert_eq!(cp, back);
    }

    #[test]
    fn malformed_json_is_a_mismatch() {
        assert!(matches!(
            Checkpoint::from_json("{not json"),
            Err(MaxPowerError::CheckpointMismatch { .. })
        ));
    }

    #[test]
    fn verify_accepts_matching_state() {
        let cp = sample_checkpoint();
        assert!(cp.verify(42, 7).is_ok());
    }

    #[test]
    fn verify_rejects_mismatches() {
        let cp = sample_checkpoint();
        assert!(cp.verify(43, 7).is_err());
        assert!(cp.verify(42, 8).is_err());
        let mut bad = sample_checkpoint();
        bad.version = CHECKPOINT_VERSION + 1;
        assert!(bad.verify(42, 7).is_err());
        let mut bad = sample_checkpoint();
        bad.hyper_estimators.pop();
        assert!(bad.verify(42, 7).is_err());
        let mut bad = sample_checkpoint();
        bad.hyper_estimates[0] = f64::NAN;
        assert!(bad.verify(42, 7).is_err());
    }

    #[test]
    fn history_entries_roundtrip_infinities() {
        let live = EstimateHistoryEntry {
            k: 1,
            mean_mw: 5.0,
            relative_half_width: f64::INFINITY,
            units_used: 300,
        };
        let stored = CheckpointHistoryEntry::from(&live);
        assert_eq!(stored.relative_half_width, None);
        let restored = EstimateHistoryEntry::from(&stored);
        assert_eq!(restored.relative_half_width, f64::INFINITY);
        assert_eq!(restored.k, live.k);
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let a = EstimationConfig::default();
        let mut b = a;
        b.relative_error = 0.01;
        assert_ne!(config_fingerprint(&a), config_fingerprint(&b));
        assert_eq!(config_fingerprint(&a), config_fingerprint(&a));
    }
}
