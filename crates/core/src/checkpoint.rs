//! Checkpoint/resume for long estimation runs.
//!
//! A gate-level run can spend hours inside the simulator; losing the whole
//! run to a crash at hyper-sample 180 of 200 is unacceptable in a CI or
//! overnight setting. A [`Checkpoint`] serializes the *estimator* state —
//! the accumulated hyper-sample estimates, their provenance, the
//! convergence history, the unit ledger and the [`RunHealth`] counters —
//! after every hyper-sample, so a killed run resumes from the last
//! completed iteration instead of from scratch.
//!
//! Determinism contract: resumed runs reproduce the uninterrupted run
//! *exactly* when driven through
//! [`Session::run`](crate::Session::run) with
//! [`RunOptions::resume`](crate::RunOptions::resume),
//! because the engine derives an independent RNG stream per
//! hyper-sample index from the master seed (the underlying generator's
//! internal state never needs to be serialized). The checkpoint pins the
//! master seed and a fingerprint of the effective configuration; resuming
//! against a different seed or config is refused with
//! [`MaxPowerError::CheckpointMismatch`].
//!
//! Non-finite values (`±∞` relative half-widths before `k = 2`, the
//! `-∞` initial observed maximum) cannot survive a JSON round-trip, so the
//! serialized form stores them as `None` and the engine restores the
//! sentinels on load.
//!
//! ## Crash safety
//!
//! Checkpoints exist precisely because processes die, so the writer must
//! survive dying mid-write itself. [`save_atomic`] implements
//! write-to-temp → fsync → rotate-previous-to-`.bak` → rename, so the
//! checkpoint path always holds either the previous complete checkpoint
//! or the new complete checkpoint, never a torn mix. Every checkpoint
//! carries a content checksum (sealed at save time); [`from_json`]
//! [`Checkpoint::from_json`] rejects records whose payload no longer
//! matches it, and [`load_with_recovery`] falls back to the `.bak`
//! rotation when the primary is missing, torn or corrupt.

use std::io::Write;

use serde::{Deserialize, Serialize};

use crate::config::EstimationConfig;
use crate::error::MaxPowerError;
use crate::estimator::EstimateHistoryEntry;
use crate::health::{EstimatorKind, FitDiagnostics, RunHealth};
use crate::report::TelemetrySummary;

/// Version of the checkpoint schema; bumped on incompatible change.
///
/// v2 added the optional `telemetry` block (cumulative per-phase durations
/// and work counters), so a resumed run's telemetry reflects total work
/// across segments rather than just the final one. v3 added the content
/// `checksum` (and the run-supervision counters inside `health`): every
/// checkpoint written by this version is sealed, and resume rejects
/// records whose payload was corrupted on disk.
///
/// The per-hyper-sample `fit_diagnostics` audit trail is an *additive*
/// v3 extension: it defaults to empty on load (the engine pads missing
/// records with [`FitDiagnostics::unknown`]) and joins the sealed payload
/// only when present, so records written before the field existed still
/// verify.
pub const CHECKPOINT_VERSION: u32 = 3;

/// One serialized row of the convergence history.
///
/// `relative_half_width` is `None` where the live value is non-finite
/// (before `k = 2`, or under the zero-mean guard).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointHistoryEntry {
    /// Hyper-samples accumulated (`k`).
    pub k: usize,
    /// Running mean estimate (mW).
    pub mean_mw: f64,
    /// Relative half-width; `None` encodes "undefined/infinite".
    pub relative_half_width: Option<f64>,
    /// Cumulative units consumed.
    pub units_used: usize,
}

impl From<&EstimateHistoryEntry> for CheckpointHistoryEntry {
    fn from(e: &EstimateHistoryEntry) -> Self {
        CheckpointHistoryEntry {
            k: e.k,
            mean_mw: e.mean_mw,
            relative_half_width: e
                .relative_half_width
                .is_finite()
                .then_some(e.relative_half_width),
            units_used: e.units_used,
        }
    }
}

impl From<&CheckpointHistoryEntry> for EstimateHistoryEntry {
    fn from(e: &CheckpointHistoryEntry) -> Self {
        EstimateHistoryEntry {
            k: e.k,
            mean_mw: e.mean_mw,
            relative_half_width: e.relative_half_width.unwrap_or(f64::INFINITY),
            units_used: e.units_used,
        }
    }
}

/// Serialized estimator state after a completed hyper-sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Schema version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Fingerprint of the *effective* configuration (after the source's
    /// population size is folded in); resuming under a different
    /// configuration is refused.
    pub config_fingerprint: u64,
    /// The master seed the per-hyper-sample RNG streams derive from.
    pub master_seed: u64,
    /// Completed hyper-sample estimates (mW).
    pub hyper_estimates: Vec<f64>,
    /// Which estimator produced each hyper-sample.
    pub hyper_estimators: Vec<EstimatorKind>,
    /// Per-hyper-sample estimator audit records (parallel to
    /// `hyper_estimates`). Empty in records written before the audit trail
    /// existed; the engine pads with [`FitDiagnostics::unknown`] on resume.
    #[serde(default)]
    pub fit_diagnostics: Vec<FitDiagnostics>,
    /// Convergence history, one row per completed hyper-sample.
    pub history: Vec<CheckpointHistoryEntry>,
    /// Units consumed so far.
    pub units_used: usize,
    /// Largest reading observed so far (mW); `None` encodes "none yet".
    pub observed_max_mw: Option<f64>,
    /// Aggregated fault counters so far.
    pub health: RunHealth,
    /// Cumulative telemetry (phase durations, work counters) across all
    /// run segments so far; absent when the run had telemetry disabled.
    #[serde(default)]
    pub telemetry: Option<TelemetrySummary>,
    /// Content checksum over every other field (FNV-1a of the canonical
    /// rendering, computed by [`Checkpoint::payload_checksum`]). Sealed at
    /// save time; `None` marks a hand-built or legacy record, which is
    /// accepted unchecked.
    #[serde(default)]
    pub checksum: Option<u64>,
}

impl Checkpoint {
    /// Completed hyper-samples in this checkpoint.
    pub fn hyper_samples(&self) -> usize {
        self.hyper_estimates.len()
    }

    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("checkpoint is always serializable")
    }

    /// Parses a checkpoint from JSON and validates its content checksum.
    ///
    /// # Errors
    ///
    /// [`MaxPowerError::CheckpointMismatch`] on malformed input or when a
    /// sealed record's payload no longer matches its checksum (disk
    /// corruption, manual edits).
    pub fn from_json(s: &str) -> Result<Checkpoint, MaxPowerError> {
        let cp: Checkpoint =
            serde_json::from_str(s).map_err(|e| MaxPowerError::CheckpointMismatch {
                message: format!("malformed checkpoint JSON: {e}"),
            })?;
        cp.check_integrity()?;
        Ok(cp)
    }

    /// The content checksum over every field except `checksum` itself:
    /// FNV-1a of a canonical textual rendering, so it is independent of
    /// the serialization format (and of JSON field order / whitespace).
    pub fn payload_checksum(&self) -> u64 {
        let mut canonical = format!(
            "{}|{}|{}|{:?}|{:?}|{:?}|{}|{:?}|{:?}|{:?}",
            self.version,
            self.config_fingerprint,
            self.master_seed,
            self.hyper_estimates,
            self.hyper_estimators,
            self.history,
            self.units_used,
            self.observed_max_mw,
            self.health,
            self.telemetry,
        );
        // The audit trail joins the sealed payload only when present, so
        // checkpoints sealed before the field existed (which deserialize
        // with an empty vec) still match their stored checksum.
        if !self.fit_diagnostics.is_empty() {
            canonical.push_str(&format!("|{:?}", self.fit_diagnostics));
        }
        fnv1a(canonical.bytes())
    }

    /// Stamps the content checksum. Called by the engine on every
    /// checkpoint it emits; call it after any manual mutation.
    pub fn seal(&mut self) {
        self.checksum = Some(self.payload_checksum());
    }

    /// Validates the content checksum, if the record carries one.
    ///
    /// # Errors
    ///
    /// [`MaxPowerError::CheckpointMismatch`] when the payload does not
    /// match the sealed checksum.
    pub fn check_integrity(&self) -> Result<(), MaxPowerError> {
        match self.checksum {
            Some(stored) if stored != self.payload_checksum() => {
                Err(MaxPowerError::CheckpointMismatch {
                    message: format!(
                        "content checksum mismatch: stored {stored:#018x}, computed {:#018x} \
                         (checkpoint corrupted on disk or edited by hand)",
                        self.payload_checksum()
                    ),
                })
            }
            _ => Ok(()),
        }
    }

    /// Checks that this checkpoint can resume a run with the given
    /// effective-config fingerprint and master seed, and that it is
    /// internally consistent.
    ///
    /// # Errors
    ///
    /// [`MaxPowerError::CheckpointMismatch`] naming the first violation.
    pub fn verify(&self, config_fingerprint: u64, master_seed: u64) -> Result<(), MaxPowerError> {
        let fail = |message: String| Err(MaxPowerError::CheckpointMismatch { message });
        if self.version != CHECKPOINT_VERSION {
            return fail(format!(
                "checkpoint version {} != supported {CHECKPOINT_VERSION}",
                self.version
            ));
        }
        if self.config_fingerprint != config_fingerprint {
            return fail(format!(
                "config fingerprint {:#018x} != current {:#018x} \
                 (the run was checkpointed under a different configuration)",
                self.config_fingerprint, config_fingerprint
            ));
        }
        if self.master_seed != master_seed {
            return fail(format!(
                "master seed {} != requested {master_seed} \
                 (resuming under a different seed would break determinism)",
                self.master_seed
            ));
        }
        let k = self.hyper_estimates.len();
        if self.hyper_estimators.len() != k || self.history.len() != k {
            return fail(format!(
                "inconsistent lengths: {k} estimates, {} estimators, {} history rows",
                self.hyper_estimators.len(),
                self.history.len()
            ));
        }
        // Empty means "written before the audit trail existed" (padded on
        // resume); any other length mismatch is corruption.
        if !self.fit_diagnostics.is_empty() && self.fit_diagnostics.len() != k {
            return fail(format!(
                "inconsistent lengths: {k} estimates, {} fit diagnostics",
                self.fit_diagnostics.len()
            ));
        }
        if self.hyper_estimates.iter().any(|e| !e.is_finite()) {
            return fail("non-finite hyper-sample estimate".to_string());
        }
        self.check_integrity()?;
        Ok(())
    }
}

/// FNV-1a over a byte stream (the shared primitive behind
/// [`config_fingerprint`] and [`Checkpoint::payload_checksum`]).
fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// FNV-1a fingerprint of a configuration's canonical (`Debug`) rendering.
/// Stable for a given build of the library; any field change — including
/// policy or budget changes that alter the draw sequence — changes it.
pub fn config_fingerprint(config: &EstimationConfig) -> u64 {
    fnv1a(format!("{config:?}").bytes())
}

/// Where [`load_with_recovery`] found a usable checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointSource {
    /// The primary path held a valid record.
    Primary,
    /// The primary was missing, torn or corrupt; the `.bak` rotation was
    /// used instead.
    Backup,
}

/// The `.bak` rotation path for a checkpoint path.
pub fn backup_path(path: &str) -> String {
    format!("{path}.bak")
}

/// Writes `contents` to `path` crash-safely: temp file in the same
/// directory → `write_all` → `fsync` → rotate any existing `path` to
/// [`backup_path`] → rename the temp over `path`. A crash at any point
/// leaves either the old complete file (at `path` or its `.bak`) or the
/// new complete file — never a torn mix under `path`.
///
/// # Errors
///
/// Any I/O error from the underlying filesystem operations.
pub fn save_atomic(path: &str, contents: &str) -> std::io::Result<()> {
    let tmp = format!("{path}.tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(contents.as_bytes())?;
        file.sync_all()?;
    }
    if std::fs::metadata(path).is_ok() {
        std::fs::rename(path, backup_path(path))?;
    }
    std::fs::rename(&tmp, path)
}

/// Loads the most recent usable checkpoint from `path`, falling back to
/// its `.bak` rotation when the primary is missing or fails `parse`
/// (torn write, disk corruption, checksum mismatch).
///
/// Generic over the parse step so callers can layer their own validation;
/// the engine passes [`Checkpoint::from_json`].
///
/// Returns `Ok(None)` when neither file exists (a fresh run), and
/// `Ok(Some((value, source)))` naming which file was used otherwise.
///
/// # Errors
///
/// When the primary is unreadable/corrupt *and* the backup cannot rescue
/// it, the **primary's** error is propagated (it names the configured
/// path, which is what the operator needs to inspect).
pub fn load_with_recovery<T>(
    path: &str,
    mut parse: impl FnMut(&str) -> Result<T, MaxPowerError>,
) -> Result<Option<(T, CheckpointSource)>, MaxPowerError> {
    let read = |p: &str| -> Result<Option<String>, MaxPowerError> {
        match std::fs::read_to_string(p) {
            Ok(text) => Ok(Some(text)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(MaxPowerError::CheckpointMismatch {
                message: format!("cannot read checkpoint `{p}`: {e}"),
            }),
        }
    };
    let backup = backup_path(path);
    match read(path)? {
        Some(text) => match parse(&text) {
            Ok(value) => Ok(Some((value, CheckpointSource::Primary))),
            Err(primary_err) => match read(&backup)? {
                Some(backup_text) => match parse(&backup_text) {
                    Ok(value) => Ok(Some((value, CheckpointSource::Backup))),
                    Err(_) => Err(primary_err),
                },
                None => Err(primary_err),
            },
        },
        None => match read(&backup)? {
            Some(backup_text) => {
                parse(&backup_text).map(|value| Some((value, CheckpointSource::Backup)))
            }
            None => Ok(None),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> Checkpoint {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            config_fingerprint: 42,
            master_seed: 7,
            hyper_estimates: vec![10.1, 10.3],
            hyper_estimators: vec![EstimatorKind::Mle, EstimatorKind::Mle],
            fit_diagnostics: vec![
                crate::health::FitDiagnostics {
                    rung: EstimatorKind::Mle,
                    reason: crate::health::FitReasonCode::Converged,
                    log_likelihood: Some(-1.25),
                    ks_distance: Some(0.08),
                    tail_shape: Some(3.1),
                },
                crate::health::FitDiagnostics::unknown(EstimatorKind::Mle),
            ],
            history: vec![
                CheckpointHistoryEntry {
                    k: 1,
                    mean_mw: 10.1,
                    relative_half_width: None,
                    units_used: 300,
                },
                CheckpointHistoryEntry {
                    k: 2,
                    mean_mw: 10.2,
                    relative_half_width: Some(0.06),
                    units_used: 600,
                },
            ],
            units_used: 600,
            observed_max_mw: Some(9.9),
            health: RunHealth::default(),
            telemetry: None,
            checksum: None,
        }
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let cp = sample_checkpoint();
        let back = Checkpoint::from_json(&cp.to_json()).unwrap();
        assert_eq!(cp, back);
    }

    #[test]
    fn malformed_json_is_a_mismatch() {
        assert!(matches!(
            Checkpoint::from_json("{not json"),
            Err(MaxPowerError::CheckpointMismatch { .. })
        ));
    }

    #[test]
    fn verify_accepts_matching_state() {
        let cp = sample_checkpoint();
        assert!(cp.verify(42, 7).is_ok());
    }

    #[test]
    fn verify_rejects_mismatches() {
        let cp = sample_checkpoint();
        assert!(cp.verify(43, 7).is_err());
        assert!(cp.verify(42, 8).is_err());
        let mut bad = sample_checkpoint();
        bad.version = CHECKPOINT_VERSION + 1;
        assert!(bad.verify(42, 7).is_err());
        let mut bad = sample_checkpoint();
        bad.hyper_estimators.pop();
        assert!(bad.verify(42, 7).is_err());
        let mut bad = sample_checkpoint();
        bad.hyper_estimates[0] = f64::NAN;
        assert!(bad.verify(42, 7).is_err());
    }

    #[test]
    fn history_entries_roundtrip_infinities() {
        let live = EstimateHistoryEntry {
            k: 1,
            mean_mw: 5.0,
            relative_half_width: f64::INFINITY,
            units_used: 300,
        };
        let stored = CheckpointHistoryEntry::from(&live);
        assert_eq!(stored.relative_half_width, None);
        let restored = EstimateHistoryEntry::from(&stored);
        assert_eq!(restored.relative_half_width, f64::INFINITY);
        assert_eq!(restored.k, live.k);
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let a = EstimationConfig::default();
        let mut b = a;
        b.relative_error = 0.01;
        assert_ne!(config_fingerprint(&a), config_fingerprint(&b));
        assert_eq!(config_fingerprint(&a), config_fingerprint(&a));
    }

    #[test]
    fn seal_and_checksum_detect_payload_tampering() {
        let mut cp = sample_checkpoint();
        cp.seal();
        assert!(cp.checksum.is_some());
        assert!(cp.check_integrity().is_ok());
        assert!(cp.verify(42, 7).is_ok());

        // Any payload mutation after sealing is caught...
        let mut tampered = cp.clone();
        tampered.units_used += 1;
        assert!(matches!(
            tampered.check_integrity(),
            Err(MaxPowerError::CheckpointMismatch { .. })
        ));
        assert!(tampered.verify(42, 7).is_err());

        // ...including float-level bit flips in the estimates.
        let mut flipped = cp.clone();
        flipped.hyper_estimates[0] = f64::from_bits(flipped.hyper_estimates[0].to_bits() ^ 1);
        assert!(flipped.check_integrity().is_err());

        // Unsealed (legacy/hand-built) records pass unchecked.
        let legacy = sample_checkpoint();
        assert_eq!(legacy.checksum, None);
        assert!(legacy.check_integrity().is_ok());

        // Re-sealing after a mutation restores integrity.
        tampered.seal();
        assert!(tampered.check_integrity().is_ok());
    }

    #[test]
    fn legacy_records_without_diagnostics_keep_their_checksum() {
        // A record sealed before the audit trail existed deserializes with
        // an empty `fit_diagnostics`; the checksum must be unchanged by
        // the field's introduction, and verify() must accept the record.
        let mut legacy = sample_checkpoint();
        legacy.fit_diagnostics.clear();
        legacy.seal();
        let sealed = legacy.checksum;
        assert!(legacy.check_integrity().is_ok());
        assert!(legacy.verify(42, 7).is_ok());
        // Adding diagnostics *does* change the payload...
        let full = sample_checkpoint();
        assert_ne!(sealed, Some(full.payload_checksum()));
        // ...and a partial trail (wrong length) is corruption.
        let mut bad = sample_checkpoint();
        bad.fit_diagnostics.pop();
        bad.seal();
        assert!(bad.verify(42, 7).is_err());
    }

    #[test]
    fn checksum_is_format_independent_but_payload_sensitive() {
        let mut a = sample_checkpoint();
        let mut b = sample_checkpoint();
        assert_eq!(a.payload_checksum(), b.payload_checksum());
        // The checksum field itself is excluded from the digest.
        a.seal();
        assert_eq!(a.payload_checksum(), b.payload_checksum());
        b.master_seed ^= 1;
        assert_ne!(a.payload_checksum(), b.payload_checksum());
    }

    /// Unique scratch path for filesystem tests (no tempfile dep).
    fn scratch(name: &str) -> String {
        let dir = std::env::temp_dir().join(format!("mpe-checkpoint-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir.join(name).to_string_lossy().into_owned()
    }

    /// Parse step used by the recovery tests: accepts strings starting
    /// with "good", rejects everything else — stand-in for checksum
    /// validation that works identically with stub and real serde.
    fn parse_good(s: &str) -> Result<String, MaxPowerError> {
        if s.starts_with("good") {
            Ok(s.to_string())
        } else {
            Err(MaxPowerError::CheckpointMismatch {
                message: format!("not a good checkpoint: {s:?}"),
            })
        }
    }

    #[test]
    fn load_with_recovery_missing_files_is_a_fresh_run() {
        let path = scratch("never-written.json");
        let loaded = load_with_recovery(&path, parse_good).expect("no files is not an error");
        assert!(loaded.is_none());
    }

    #[test]
    fn save_atomic_rotates_backup_and_survives_torn_primary() {
        let path = scratch("torn-primary.json");
        save_atomic(&path, "good-generation-1").expect("first save");
        save_atomic(&path, "good-generation-2").expect("second save");
        // Second save rotated the first generation into the backup.
        assert_eq!(
            std::fs::read_to_string(backup_path(&path)).expect("backup exists"),
            "good-generation-1"
        );
        let (value, source) = load_with_recovery(&path, parse_good)
            .expect("load")
            .expect("present");
        assert_eq!(
            (value.as_str(), source),
            ("good-generation-2", CheckpointSource::Primary)
        );

        // Tear the primary (as a crash mid-write outside save_atomic, or
        // disk corruption, would): recovery falls back to the backup.
        std::fs::write(&path, "go").expect("truncate primary");
        let (value, source) = load_with_recovery(&path, parse_good)
            .expect("recovered")
            .expect("present");
        assert_eq!(
            (value.as_str(), source),
            ("good-generation-1", CheckpointSource::Backup)
        );

        // Primary gone entirely → still recovered from backup.
        std::fs::remove_file(&path).expect("remove primary");
        let (value, source) = load_with_recovery(&path, parse_good)
            .expect("recovered")
            .expect("present");
        assert_eq!(
            (value.as_str(), source),
            ("good-generation-1", CheckpointSource::Backup)
        );
    }

    #[test]
    fn load_with_recovery_propagates_primary_error_when_backup_is_bad_too() {
        let path = scratch("both-corrupt.json");
        std::fs::write(&path, "corrupt primary").expect("write primary");
        std::fs::write(backup_path(&path), "corrupt backup").expect("write backup");
        let err = load_with_recovery(&path, parse_good).expect_err("both corrupt");
        // The error is the primary's, naming its contents.
        assert!(err.to_string().contains("corrupt primary"));
    }

    #[test]
    fn bit_flipped_checkpoint_json_is_rejected_and_recovered() {
        // Full-stack version of the recovery story: a sealed checkpoint
        // saved twice, primary corrupted by a single flipped digit,
        // resume falls back to the backup generation. Requires functional
        // JSON (skipped under the offline serde stub).
        let mut cp = sample_checkpoint();
        cp.seal();
        if Checkpoint::from_json(&cp.to_json()).is_err() {
            return;
        }
        let path = scratch("bit-flip.json");
        let mut older = cp.clone();
        older.units_used = 300;
        older.seal();
        save_atomic(&path, &older.to_json()).expect("save older");
        save_atomic(&path, &cp.to_json()).expect("save newer");

        // Flip one digit of the units ledger in the primary file.
        let text = std::fs::read_to_string(&path).expect("read primary");
        let corrupted = text.replacen("600", "601", 1);
        assert_ne!(text, corrupted, "expected the payload to contain 600");
        std::fs::write(&path, corrupted).expect("corrupt primary");

        let (recovered, source) = load_with_recovery(&path, Checkpoint::from_json)
            .expect("recovered")
            .expect("present");
        assert_eq!(source, CheckpointSource::Backup);
        assert_eq!(recovered, older);
    }
}
