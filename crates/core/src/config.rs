//! Estimation configuration.

use crate::error::MaxPowerError;

/// Parameters of the iterative maximum-power estimation procedure.
///
/// The defaults are exactly the paper's operating point: sample size
/// `n = 30` (where Figure 1 shows the Weibull approximation has converged),
/// `m = 10` samples per hyper-sample (where Figure 2 shows the estimator is
/// normal), 90 % confidence and 5 % relative error.
///
/// # Example
///
/// ```
/// use maxpower::EstimationConfig;
/// let cfg = EstimationConfig::default();
/// assert_eq!(cfg.sample_size, 30);
/// assert_eq!(cfg.samples_per_hyper, 10);
/// assert_eq!(cfg.units_per_hyper_sample(), 300);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimationConfig {
    /// Units per sample (`n`). The paper fixes 30: large enough for the
    /// Weibull limit, small enough to stay cheap.
    pub sample_size: usize,
    /// Samples per hyper-sample (`m`). The paper fixes 10: enough for the
    /// estimator's asymptotic normality to kick in.
    pub samples_per_hyper: usize,
    /// Confidence level `l ∈ (0, 1)` of the stopping rule (paper: 0.90).
    pub confidence: f64,
    /// Target relative error `ε > 0` of the stopping rule (paper: 0.05).
    pub relative_error: f64,
    /// Minimum hyper-samples before the stopping rule may fire (at least 2,
    /// since the sample variance `s²` needs two points).
    pub min_hyper_samples: usize,
    /// Hard cap on hyper-samples; exceeding it yields
    /// [`MaxPowerError::NotConverged`].
    pub max_hyper_samples: usize,
    /// When estimating a *finite* population's maximum, its size `|V|`:
    /// the estimator reports the `(1 − 1/|V|)` quantile of the fitted
    /// Weibull instead of the raw endpoint `μ̂` (paper §3.4). `None` means
    /// an infinite population (category I.1 over the full vector space).
    pub finite_population: Option<u64>,
    /// Bias correction applied to each hyper-sample estimate. The paper
    /// uses none; Smith's MLE carries an `O(1/m)` bias at `m = 10` which
    /// the delete-one jackknife removes at the cost of roughly doubled
    /// estimator variance (see the `ablation_estimator` experiment before
    /// enabling).
    pub bias_correction: BiasCorrection,
    /// How a hyper-sample reacts to a failing or garbage-emitting power
    /// source (transient errors, NaN/±∞ readings, readings below
    /// [`min_reading_mw`](Self::min_reading_mw)). The paper assumes every
    /// simulation succeeds; deployments against flaky oracles should pick
    /// [`SamplePolicy::Skip`] or [`SamplePolicy::Retry`].
    pub sample_policy: SamplePolicy,
    /// What to do when the reversed-Weibull MLE stays degenerate after its
    /// retry budget: error out (the paper's implicit behaviour) or degrade
    /// down the estimator ladder (POT endpoint, then empirical quantile).
    pub fallback: FallbackPolicy,
    /// Retry budget for degenerate MLEs, in units of one hyper-sample's
    /// cost (`n·m` draws). Each failed attempt is charged double the
    /// previous one (1, 2, 4, … hyper-samples), so retries stop after
    /// `⌊log₂(budget+1)⌋` attempts instead of burning a fixed count — the
    /// default of 15 allows 4 attempts. A provably constant source bails
    /// out after the first attempt regardless of budget.
    pub mle_retry_budget: usize,
    /// Smallest physically plausible reading: finite readings below this
    /// are handled per [`sample_policy`](Self::sample_policy). The default
    /// `-∞` accepts any finite reading (preserving the estimator's shift
    /// equivariance for synthetic parents); power deployments set `0.0`.
    pub min_reading_mw: f64,
    /// Zero-mean guard: when `|P̄|` is at or below this floor the relative
    /// half-width `t·s/(√k·|P̄|)` is meaningless (division by ≈0) and the
    /// stopping rule switches to the absolute criterion
    /// [`absolute_error_mw`](Self::absolute_error_mw). Surfaced in
    /// [`RunHealth::zero_mean_guard`](crate::RunHealth).
    pub mean_floor_mw: f64,
    /// Absolute half-width (mW) accepted by the stopping rule while the
    /// zero-mean guard is active.
    pub absolute_error_mw: f64,
}

/// Reaction of hyper-sample generation to source failures and invalid
/// readings (NaN, ±∞, or below [`EstimationConfig::min_reading_mw`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SamplePolicy {
    /// Propagate the first failure / invalid reading as an error (the
    /// seed behaviour for source errors; invalid readings previously
    /// leaked into the maxima silently).
    #[default]
    Fail,
    /// Discard the offending draw and draw again, up to a per-hyper-sample
    /// cap on discarded draws plus survived errors; exceeding the cap
    /// raises [`MaxPowerError::SamplePolicyExhausted`](crate::MaxPowerError).
    Skip {
        /// Maximum discarded readings + survived source errors per
        /// hyper-sample.
        max_discarded: usize,
    },
    /// Retry the draw immediately, tolerating up to `max_attempts`
    /// *consecutive* failures before propagating the last error.
    Retry {
        /// Consecutive failures tolerated before giving up.
        max_attempts: usize,
    },
}

impl SamplePolicy {
    /// Parses the deployment-surface spelling shared by the CLI's
    /// `--sample-policy` flag and the job API's `sample_policy` field:
    /// `fail`, `skip[:CAP]` (default cap 1000) or `retry[:N]` (default 8).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the unrecognised policy or
    /// cap.
    pub fn parse(v: &str) -> Result<SamplePolicy, String> {
        let cap = |n: &str, what: &str| -> Result<usize, String> {
            n.parse()
                .map_err(|_| format!("sample policy `{what}` expects a numeric cap, got `{n}`"))
        };
        match v.split_once(':') {
            None => match v {
                "fail" => Ok(SamplePolicy::Fail),
                "skip" => Ok(SamplePolicy::Skip {
                    max_discarded: 1000,
                }),
                "retry" => Ok(SamplePolicy::Retry { max_attempts: 8 }),
                other => Err(format!("unknown sample policy `{other}`")),
            },
            Some(("skip", n)) => Ok(SamplePolicy::Skip {
                max_discarded: cap(n, "skip")?,
            }),
            Some(("retry", n)) => Ok(SamplePolicy::Retry {
                max_attempts: cap(n, "retry")?,
            }),
            Some((other, _)) => Err(format!("unknown sample policy `{other}`")),
        }
    }

    /// The canonical spelling [`parse`](Self::parse) accepts back —
    /// `parse(label()) == self` — used by the serve spool to persist
    /// job specs.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            SamplePolicy::Fail => "fail".to_string(),
            SamplePolicy::Skip { max_discarded } => format!("skip:{max_discarded}"),
            SamplePolicy::Retry { max_attempts } => format!("retry:{max_attempts}"),
        }
    }
}

/// What to do when the primary reversed-Weibull MLE cannot produce a
/// hyper-sample estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FallbackPolicy {
    /// Degrade down the estimator ladder: peaks-over-threshold GPD
    /// endpoint over the raw draws, then the distribution-free empirical
    /// quantile. The run keeps going and reports
    /// [`RunStatus::Degraded`](crate::RunStatus) with per-sample
    /// provenance instead of aborting.
    #[default]
    Degrade,
    /// Raise [`MaxPowerError::HyperSampleFailed`](crate::MaxPowerError)
    /// after the retry budget, discarding nothing but estimating nothing
    /// either (the seed behaviour).
    ErrorOut,
}

/// Bias-correction strategies for the hyper-sample estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BiasCorrection {
    /// The paper's plain estimator.
    #[default]
    None,
    /// Delete-one jackknife over the `m` sample maxima:
    /// `θ_J = m·θ̂ − (m−1)·mean(θ̂₋ᵢ)`. Removes the leading `O(1/m)` bias;
    /// increases variance. Falls back to the plain estimate when too many
    /// leave-one-out refits fail.
    Jackknife,
}

impl Default for EstimationConfig {
    fn default() -> Self {
        EstimationConfig {
            sample_size: 30,
            samples_per_hyper: 10,
            confidence: 0.90,
            relative_error: 0.05,
            min_hyper_samples: 2,
            max_hyper_samples: 200,
            finite_population: None,
            bias_correction: BiasCorrection::None,
            sample_policy: SamplePolicy::Fail,
            fallback: FallbackPolicy::Degrade,
            mle_retry_budget: 15,
            min_reading_mw: f64::NEG_INFINITY,
            mean_floor_mw: 1e-9,
            absolute_error_mw: 1e-6,
        }
    }
}

impl EstimationConfig {
    /// Vector pairs consumed by one hyper-sample (`n × m`; 300 by default).
    pub fn units_per_hyper_sample(&self) -> usize {
        self.sample_size * self.samples_per_hyper
    }

    /// The configuration both deployment front ends — the `mpe` CLI and
    /// the `mpe serve` job API — build from their user-facing knobs.
    ///
    /// Centralised so the two surfaces cannot drift: a served job with
    /// the same knobs as a CLI invocation must produce a byte-identical
    /// report, which starts with an identical configuration. Compared to
    /// [`EstimationConfig::default`] this raises `max_hyper_samples` to
    /// 500 (deployments prefer a late answer over none) and floors
    /// readings at `0.0` (power and delay are physically non-negative).
    #[must_use]
    pub fn for_deployment(
        relative_error: f64,
        confidence: f64,
        finite_population: Option<u64>,
        sample_policy: SamplePolicy,
    ) -> EstimationConfig {
        EstimationConfig {
            relative_error,
            confidence,
            finite_population,
            max_hyper_samples: 500,
            sample_policy,
            min_reading_mw: 0.0,
            ..EstimationConfig::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MaxPowerError::InvalidConfig`] describing the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), MaxPowerError> {
        let fail = |message: &str| {
            Err(MaxPowerError::InvalidConfig {
                message: message.to_string(),
            })
        };
        if self.sample_size < 2 {
            return fail("sample_size must be at least 2");
        }
        if self.samples_per_hyper < 5 {
            return fail("samples_per_hyper must be at least 5 for a stable MLE");
        }
        if !(self.confidence > 0.0 && self.confidence < 1.0) {
            return fail("confidence must be in (0, 1)");
        }
        if !(self.relative_error > 0.0 && self.relative_error < 1.0) {
            return fail("relative_error must be in (0, 1)");
        }
        if self.min_hyper_samples < 2 {
            return fail("min_hyper_samples must be at least 2 (variance needs two points)");
        }
        if self.max_hyper_samples < self.min_hyper_samples {
            return fail("max_hyper_samples must be >= min_hyper_samples");
        }
        if let Some(v) = self.finite_population {
            if v < 2 {
                return fail("finite_population must be at least 2");
            }
        }
        match self.sample_policy {
            SamplePolicy::Fail => {}
            SamplePolicy::Skip { max_discarded } => {
                if max_discarded == 0 {
                    return fail("SamplePolicy::Skip requires max_discarded >= 1");
                }
            }
            SamplePolicy::Retry { max_attempts } => {
                if max_attempts == 0 {
                    return fail("SamplePolicy::Retry requires max_attempts >= 1");
                }
            }
        }
        if self.mle_retry_budget == 0 {
            return fail("mle_retry_budget must allow at least one attempt");
        }
        if self.min_reading_mw.is_nan() {
            return fail("min_reading_mw must not be NaN");
        }
        if !(self.mean_floor_mw >= 0.0 && self.mean_floor_mw.is_finite()) {
            return fail("mean_floor_mw must be finite and non-negative");
        }
        if !(self.absolute_error_mw > 0.0 && self.absolute_error_mw.is_finite()) {
            return fail("absolute_error_mw must be finite and positive");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_papers_operating_point() {
        let c = EstimationConfig::default();
        assert_eq!(c.sample_size, 30);
        assert_eq!(c.samples_per_hyper, 10);
        assert_eq!(c.confidence, 0.90);
        assert_eq!(c.relative_error, 0.05);
        assert_eq!(c.units_per_hyper_sample(), 300);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_each_field() {
        let base = EstimationConfig::default();
        let mut c = base;
        c.sample_size = 1;
        assert!(c.validate().is_err());
        let mut c = base;
        c.samples_per_hyper = 3;
        assert!(c.validate().is_err());
        let mut c = base;
        c.confidence = 1.0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.relative_error = 0.0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.min_hyper_samples = 1;
        assert!(c.validate().is_err());
        let mut c = base;
        c.max_hyper_samples = 1;
        assert!(c.validate().is_err());
        let mut c = base;
        c.finite_population = Some(1);
        assert!(c.validate().is_err());
        let mut c = base;
        c.finite_population = Some(160_000);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_resilience_fields() {
        let base = EstimationConfig::default();
        let mut c = base;
        c.sample_policy = SamplePolicy::Skip { max_discarded: 0 };
        assert!(c.validate().is_err());
        let mut c = base;
        c.sample_policy = SamplePolicy::Retry { max_attempts: 0 };
        assert!(c.validate().is_err());
        let mut c = base;
        c.mle_retry_budget = 0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.min_reading_mw = f64::NAN;
        assert!(c.validate().is_err());
        let mut c = base;
        c.mean_floor_mw = -1.0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.absolute_error_mw = 0.0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.sample_policy = SamplePolicy::Retry { max_attempts: 8 };
        c.min_reading_mw = 0.0;
        assert!(c.validate().is_ok());
    }
}
