//! Estimation configuration.

use crate::error::MaxPowerError;

/// Parameters of the iterative maximum-power estimation procedure.
///
/// The defaults are exactly the paper's operating point: sample size
/// `n = 30` (where Figure 1 shows the Weibull approximation has converged),
/// `m = 10` samples per hyper-sample (where Figure 2 shows the estimator is
/// normal), 90 % confidence and 5 % relative error.
///
/// # Example
///
/// ```
/// use maxpower::EstimationConfig;
/// let cfg = EstimationConfig::default();
/// assert_eq!(cfg.sample_size, 30);
/// assert_eq!(cfg.samples_per_hyper, 10);
/// assert_eq!(cfg.units_per_hyper_sample(), 300);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimationConfig {
    /// Units per sample (`n`). The paper fixes 30: large enough for the
    /// Weibull limit, small enough to stay cheap.
    pub sample_size: usize,
    /// Samples per hyper-sample (`m`). The paper fixes 10: enough for the
    /// estimator's asymptotic normality to kick in.
    pub samples_per_hyper: usize,
    /// Confidence level `l ∈ (0, 1)` of the stopping rule (paper: 0.90).
    pub confidence: f64,
    /// Target relative error `ε > 0` of the stopping rule (paper: 0.05).
    pub relative_error: f64,
    /// Minimum hyper-samples before the stopping rule may fire (at least 2,
    /// since the sample variance `s²` needs two points).
    pub min_hyper_samples: usize,
    /// Hard cap on hyper-samples; exceeding it yields
    /// [`MaxPowerError::NotConverged`].
    pub max_hyper_samples: usize,
    /// When estimating a *finite* population's maximum, its size `|V|`:
    /// the estimator reports the `(1 − 1/|V|)` quantile of the fitted
    /// Weibull instead of the raw endpoint `μ̂` (paper §3.4). `None` means
    /// an infinite population (category I.1 over the full vector space).
    pub finite_population: Option<u64>,
    /// Bias correction applied to each hyper-sample estimate. The paper
    /// uses none; Smith's MLE carries an `O(1/m)` bias at `m = 10` which
    /// the delete-one jackknife removes at the cost of roughly doubled
    /// estimator variance (see the `ablation_estimator` experiment before
    /// enabling).
    pub bias_correction: BiasCorrection,
}

/// Bias-correction strategies for the hyper-sample estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BiasCorrection {
    /// The paper's plain estimator.
    #[default]
    None,
    /// Delete-one jackknife over the `m` sample maxima:
    /// `θ_J = m·θ̂ − (m−1)·mean(θ̂₋ᵢ)`. Removes the leading `O(1/m)` bias;
    /// increases variance. Falls back to the plain estimate when too many
    /// leave-one-out refits fail.
    Jackknife,
}

impl Default for EstimationConfig {
    fn default() -> Self {
        EstimationConfig {
            sample_size: 30,
            samples_per_hyper: 10,
            confidence: 0.90,
            relative_error: 0.05,
            min_hyper_samples: 2,
            max_hyper_samples: 200,
            finite_population: None,
            bias_correction: BiasCorrection::None,
        }
    }
}

impl EstimationConfig {
    /// Vector pairs consumed by one hyper-sample (`n × m`; 300 by default).
    pub fn units_per_hyper_sample(&self) -> usize {
        self.sample_size * self.samples_per_hyper
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MaxPowerError::InvalidConfig`] describing the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), MaxPowerError> {
        let fail = |message: &str| {
            Err(MaxPowerError::InvalidConfig {
                message: message.to_string(),
            })
        };
        if self.sample_size < 2 {
            return fail("sample_size must be at least 2");
        }
        if self.samples_per_hyper < 5 {
            return fail("samples_per_hyper must be at least 5 for a stable MLE");
        }
        if !(self.confidence > 0.0 && self.confidence < 1.0) {
            return fail("confidence must be in (0, 1)");
        }
        if !(self.relative_error > 0.0 && self.relative_error < 1.0) {
            return fail("relative_error must be in (0, 1)");
        }
        if self.min_hyper_samples < 2 {
            return fail("min_hyper_samples must be at least 2 (variance needs two points)");
        }
        if self.max_hyper_samples < self.min_hyper_samples {
            return fail("max_hyper_samples must be >= min_hyper_samples");
        }
        if let Some(v) = self.finite_population {
            if v < 2 {
                return fail("finite_population must be at least 2");
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_papers_operating_point() {
        let c = EstimationConfig::default();
        assert_eq!(c.sample_size, 30);
        assert_eq!(c.samples_per_hyper, 10);
        assert_eq!(c.confidence, 0.90);
        assert_eq!(c.relative_error, 0.05);
        assert_eq!(c.units_per_hyper_sample(), 300);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_each_field() {
        let base = EstimationConfig::default();
        let mut c = base;
        c.sample_size = 1;
        assert!(c.validate().is_err());
        let mut c = base;
        c.samples_per_hyper = 3;
        assert!(c.validate().is_err());
        let mut c = base;
        c.confidence = 1.0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.relative_error = 0.0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.min_hyper_samples = 1;
        assert!(c.validate().is_err());
        let mut c = base;
        c.max_hyper_samples = 1;
        assert!(c.validate().is_err());
        let mut c = base;
        c.finite_population = Some(1);
        assert!(c.validate().is_err());
        let mut c = base;
        c.finite_population = Some(160_000);
        assert!(c.validate().is_ok());
    }
}
