//! Maximum circuit delay estimation — the extension the paper's conclusion
//! proposes ("the generality of this approach makes it applicable to other
//! fields of VLSI design automation; for example, longest path delay
//! estimation").
//!
//! The settle time of a vector pair — how long the event-driven simulation
//! takes to quiesce after the second vector is applied — is, like cycle
//! power, a bounded random variable over the vector-pair space. Its right
//! endpoint is the circuit's *exercisable* critical delay (the static
//! topological critical path is an upper bound that false paths may make
//! unreachable). The identical extreme-order-statistics machinery estimates
//! it: just swap the metric.

use rand::RngCore;

use mpe_netlist::Circuit;
use mpe_sim::{DelayModel, PowerConfig, PowerSimulator};
use mpe_vectors::PairGenerator;

use crate::error::MaxPowerError;
use crate::source::PowerSource;

/// A [`PowerSource`] whose "power" is the circuit's settle time (in delay
/// units) for a random vector pair — feeding the maximum-delay problem
/// through the unchanged estimator.
///
/// # Example
///
/// ```
/// use maxpower::{delay::DelaySource, EstimationConfig, EstimatorBuilder, RunOptions};
/// use mpe_netlist::{generate, Iscas85};
/// use mpe_sim::DelayModel;
/// use mpe_vectors::PairGenerator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let circuit = generate(Iscas85::C432, 7)?;
/// let source = DelaySource::new(&circuit, PairGenerator::Uniform, DelayModel::Unit);
/// let config = EstimationConfig {
///     finite_population: Some(100_000),
///     max_hyper_samples: 500,
///     ..EstimationConfig::default()
/// };
/// let session = EstimatorBuilder::new(config).build();
/// let estimate = session.run(&source, RunOptions::default().seeded(1))?;
/// // Under the unit-delay model the settle time is bounded by the depth.
/// assert!(estimate.estimate_mw <= circuit.depth() as f64 + 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DelaySource<'c> {
    simulator: PowerSimulator<'c>,
    generator: PairGenerator,
    width: usize,
    simulated: u64,
}

impl<'c> DelaySource<'c> {
    /// Creates a delay source over fresh random pairs from `generator`.
    pub fn new(circuit: &'c Circuit, generator: PairGenerator, delay: DelayModel) -> Self {
        DelaySource {
            simulator: PowerSimulator::new(circuit, delay, PowerConfig::default()),
            width: circuit.num_inputs(),
            generator,
            simulated: 0,
        }
    }

    /// Vector pairs simulated so far.
    pub fn simulated(&self) -> u64 {
        self.simulated
    }
}

impl PowerSource for DelaySource<'_> {
    fn sample(&mut self, rng: &mut dyn RngCore) -> Result<f64, MaxPowerError> {
        let pair = self.generator.generate(rng, self.width);
        self.simulated += 1;
        let report = self
            .simulator
            .cycle_report(&pair.v1, &pair.v2)
            .map_err(MaxPowerError::from)?;
        // Jitter-free discrete metrics stall the continuous-distribution
        // machinery (ties make sample maxima degenerate); dithering within
        // one time quantum preserves the ordering and the endpoint while
        // restoring continuity. This mirrors how measurement noise enters
        // real silicon delay data.
        let dither: f64 = {
            let mut bytes = [0u8; 4];
            rng.fill_bytes(&mut bytes);
            u32::from_le_bytes(bytes) as f64 / u32::MAX as f64
        };
        Ok(report.settle_time as f64 + dither)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{EstimatorBuilder, RunOptions};
    use crate::EstimationConfig;
    use mpe_netlist::{generate, Iscas85};

    #[test]
    fn estimates_delay_bounded_by_depth() {
        let circuit = generate(Iscas85::C880, 5).unwrap();
        let mut source = DelaySource::new(&circuit, PairGenerator::Uniform, DelayModel::Unit);
        let config = EstimationConfig {
            finite_population: Some(100_000),
            max_hyper_samples: 500,
            ..EstimationConfig::default()
        };
        let session = EstimatorBuilder::new(config).build();
        let est = session
            .run_source(&mut source, RunOptions::default().seeded(3))
            .expect("delay estimation converges");
        // Under unit delay the settle time cannot exceed the logic depth
        // (each level adds one unit); dither adds at most 1.
        assert!(est.estimate_mw <= circuit.depth() as f64 + 1.0);
        assert!(est.estimate_mw > 1.0, "some path longer than one level");
        assert_eq!(est.units_used as u64, source.simulated());
    }

    #[test]
    fn observed_delay_close_to_estimate() {
        // Each individual hyper-sample is clamped to its own observed
        // maximum, but the final estimate is the *mean* of hyper-samples
        // (the paper's procedure), so it may sit slightly below the global
        // observed maximum — never far below it though.
        let circuit = generate(Iscas85::C432, 5).unwrap();
        let source = DelaySource::new(&circuit, PairGenerator::Uniform, DelayModel::Unit);
        let config = EstimationConfig {
            finite_population: Some(100_000),
            max_hyper_samples: 500,
            ..EstimationConfig::default()
        };
        let session = EstimatorBuilder::new(config).build();
        if let Ok(est) = session.run(&source, RunOptions::default().seeded(4)) {
            assert!(est.observed_max_mw > 0.0);
            assert!(
                est.estimate_mw >= 0.8 * est.observed_max_mw,
                "estimate {} far below observed {}",
                est.estimate_mw,
                est.observed_max_mw
            );
        }
    }

    #[test]
    fn fanout_delay_yields_longer_estimates_than_unit() {
        let circuit = generate(Iscas85::C1355, 5).unwrap();
        let run = |model: DelayModel| -> f64 {
            let source = DelaySource::new(&circuit, PairGenerator::Uniform, model);
            let config = EstimationConfig {
                finite_population: Some(50_000),
                max_hyper_samples: 500,
                ..EstimationConfig::default()
            };
            let session = EstimatorBuilder::new(config).build();
            session
                .run(&source, RunOptions::default().seeded(5))
                .map(|e| e.estimate_mw)
                .unwrap_or(f64::NAN)
        };
        let unit = run(DelayModel::Unit);
        let fanout = run(DelayModel::fanout_default());
        if unit.is_finite() && fanout.is_finite() {
            assert!(fanout > unit, "fanout {fanout} vs unit {unit}");
        }
    }
}
