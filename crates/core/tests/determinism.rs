//! Determinism acceptance suite for the parallel execution engine: the
//! same `(config, seed)` must produce byte-identical estimates, checkpoint
//! sequences and history for **every** worker count, and a run interrupted
//! mid-parallel must resume to the identical result under a different
//! worker count.

use std::num::NonZeroUsize;

use maxpower::telemetry::{names, Telemetry};
use maxpower::{
    Checkpoint, EstimationConfig, EstimatorBuilder, FaultConfig, FaultInjectingSource, FnSource,
    RunOptions, SamplePolicy, SimulatorSource,
};
use mpe_netlist::{generate, Iscas85};
use mpe_sim::{DelayModel, KernelMode, PowerConfig};
use mpe_vectors::PairGenerator;
use rand::{Rng, RngCore};

fn weibull_source() -> FnSource<impl FnMut(&mut dyn RngCore) -> f64 + Clone + Send> {
    FnSource::new(|rng: &mut dyn RngCore| {
        let u: f64 = rng.gen_range(1e-12..1.0f64);
        10.0 - (-u.ln()).powf(1.0 / 3.0)
    })
}

fn workers(n: usize) -> NonZeroUsize {
    NonZeroUsize::new(n).expect("non-zero worker count")
}

/// The acceptance criterion verbatim: workers 1, 2 and 8 produce
/// byte-identical estimates (every field, compared through `Debug`, which
/// formats the full history and health records).
#[test]
fn worker_counts_1_2_8_are_bit_identical() {
    let session = EstimatorBuilder::new(EstimationConfig::default()).build();
    let source = weibull_source();
    let reference = format!(
        "{:?}",
        session
            .run(&source, RunOptions::default().seeded(42))
            .expect("sequential run converges")
    );
    for n in [2usize, 8] {
        let parallel = format!(
            "{:?}",
            session
                .run(
                    &source,
                    RunOptions::default().seeded(42).workers(workers(n)),
                )
                .expect("parallel run converges")
        );
        assert_eq!(reference, parallel, "workers {n} diverged from workers 1");
    }
}

/// The same on a real gate-level simulation source: the paper's deployment
/// flow parallelized must not change a single bit of the answer.
#[test]
fn circuit_run_is_bit_identical_across_worker_counts() {
    let circuit = generate(Iscas85::C432, 7).expect("circuit generates");
    let source = SimulatorSource::new(
        &circuit,
        PairGenerator::Uniform,
        DelayModel::Zero,
        PowerConfig::default(),
    );
    let config = EstimationConfig {
        relative_error: 0.10,
        min_reading_mw: 0.0,
        ..EstimationConfig::default()
    };
    let session = EstimatorBuilder::new(config).build();
    let sequential = session
        .run(&source, RunOptions::default().seeded(11))
        .expect("sequential run converges");
    let parallel = session
        .run(
            &source,
            RunOptions::default().seeded(11).workers(workers(4)),
        )
        .expect("parallel run converges");
    assert_eq!(format!("{sequential:?}"), format!("{parallel:?}"));
}

/// The checkpoint *sequence* — not just the final estimate — is identical
/// under parallel execution: speculative hyper-samples beyond the stopping
/// point are discarded, never committed, never checkpointed.
#[test]
fn checkpoint_sequence_is_identical_across_worker_counts() {
    let session = EstimatorBuilder::new(EstimationConfig::default()).build();
    let source = weibull_source();
    let record = |n: usize| {
        let mut cps: Vec<Checkpoint> = Vec::new();
        let mut save = |cp: &Checkpoint| cps.push(cp.clone());
        session
            .run(
                &source,
                RunOptions::default()
                    .seeded(7)
                    .workers(workers(n))
                    .save_with(&mut save),
            )
            .expect("run converges");
        cps
    };
    let sequential = record(1);
    let parallel = record(4);
    assert!(!sequential.is_empty());
    assert_eq!(sequential, parallel, "checkpoint sequences diverged");
}

/// A run killed mid-parallel and resumed under a *different* worker count
/// still lands on the uninterrupted run's exact result: the checkpoint
/// carries no execution-shape state, only committed statistics.
#[test]
fn mid_parallel_checkpoint_resumes_under_different_worker_count() {
    let session = EstimatorBuilder::new(EstimationConfig::default()).build();
    let source = weibull_source();

    let mut cps: Vec<Checkpoint> = Vec::new();
    let mut save = |cp: &Checkpoint| cps.push(cp.clone());
    let full = session
        .run(
            &source,
            RunOptions::default()
                .seeded(21)
                .workers(workers(4))
                .save_with(&mut save),
        )
        .expect("parallel reference run converges");
    assert!(cps.len() >= 2, "need a mid-run checkpoint to resume from");
    let mid = &cps[cps.len() / 2];

    for n in [1usize, 2, 8] {
        let resumed = session
            .run(
                &source,
                RunOptions::default()
                    .seeded(21)
                    .workers(workers(n))
                    .resume(mid),
            )
            .expect("resumed run converges");
        assert_eq!(
            format!("{full:?}"),
            format!("{resumed:?}"),
            "resume under {n} workers diverged"
        );
    }
}

/// The two session entry points — the factory path and the caller-owned
/// `&mut` source path — share the derived-RNG schedule: migrating a
/// caller between them cannot change its numbers.
#[test]
fn run_source_matches_factory_run() {
    let config = EstimationConfig::default();
    let session = EstimatorBuilder::new(config).build();
    let mut source = weibull_source();
    let by_ref = session
        .run_source(&mut source, RunOptions::default().seeded(5))
        .expect("run_source converges");
    let by_factory = session
        .run(&weibull_source(), RunOptions::default().seeded(5))
        .expect("session run converges");
    assert_eq!(format!("{by_ref:?}"), format!("{by_factory:?}"));
}

/// Fault injection composes with parallelism: the injector reseeds its
/// fault stream per hyper-sample index, so the fault schedule — and with
/// it the estimate and health ledger — is identical for any worker count.
#[test]
fn fault_injected_parallel_run_is_deterministic() {
    let faults = FaultConfig {
        seed: 13,
        error_rate: 0.05,
        nan_rate: 0.01,
        ..FaultConfig::default()
    };
    let factory = FaultInjectingSource::new(weibull_source(), faults).expect("valid fault mix");
    let config = EstimationConfig {
        sample_policy: SamplePolicy::Skip {
            max_discarded: 10_000,
        },
        ..EstimationConfig::default()
    };
    let session = EstimatorBuilder::new(config).build();
    let sequential = session
        .run(&factory, RunOptions::default().seeded(3))
        .expect("sequential faulted run converges");
    let parallel = session
        .run(
            &factory,
            RunOptions::default().seeded(3).workers(workers(3)),
        )
        .expect("parallel faulted run converges");
    assert_eq!(format!("{sequential:?}"), format!("{parallel:?}"));
    assert!(
        sequential.health.source_errors > 0 || sequential.health.samples_discarded > 0,
        "fault mix never fired — the test is vacuous"
    );
}

/// Kernel selection is pure provenance: the bit-parallel packed kernels
/// (both lane widths) and the scalar kernel produce byte-identical
/// estimates, health ledgers *and checkpoint sequences* for workers 1, 2
/// and 8 — under the zero-delay fast path *and* the glitch-accurate
/// timing path. A kernel switch can change cost, never a committed bit.
#[test]
fn packed_and_scalar_kernels_are_bit_identical_across_worker_counts() {
    let circuit = generate(Iscas85::C432, 7).expect("circuit generates");
    let config = EstimationConfig {
        relative_error: 0.10,
        min_reading_mw: 0.0,
        ..EstimationConfig::default()
    };
    let session = EstimatorBuilder::new(config).build();
    let run = |kernel: KernelMode, n: usize, delay: DelayModel| {
        let source = SimulatorSource::new(
            &circuit,
            PairGenerator::Uniform,
            delay,
            PowerConfig::default(),
        )
        .with_kernel(kernel);
        let mut cps: Vec<Checkpoint> = Vec::new();
        let mut save = |cp: &Checkpoint| cps.push(cp.clone());
        let est = session
            .run(
                &source,
                RunOptions::default()
                    .seeded(11)
                    .workers(workers(n))
                    .save_with(&mut save),
            )
            .expect("run converges");
        (format!("{est:?}"), cps)
    };
    for delay in [DelayModel::Zero, DelayModel::Unit] {
        let (reference, reference_cps) = run(KernelMode::Scalar, 1, delay);
        assert!(!reference_cps.is_empty());
        for n in [1usize, 2, 8] {
            for kernel in [
                KernelMode::Scalar,
                KernelMode::Packed,
                KernelMode::Packed128,
            ] {
                let (est, cps) = run(kernel, n, delay);
                assert_eq!(
                    reference, est,
                    "{kernel} kernel, {n} workers diverged under {delay}"
                );
                assert_eq!(
                    reference_cps, cps,
                    "{kernel} kernel, {n} workers: checkpoint sequence diverged under {delay}"
                );
            }
        }
    }
}

/// Fault injection composes with kernel selection: the injector makes its
/// fault decision per draw, which forces the per-draw sampling path, and
/// the inner kernel's readings are bit-identical either way — so faulted
/// runs match across kernels and worker counts, health ledger included.
#[test]
fn fault_injected_runs_match_across_kernels() {
    let circuit = generate(Iscas85::C432, 7).expect("circuit generates");
    let faults = FaultConfig {
        seed: 13,
        error_rate: 0.05,
        nan_rate: 0.01,
        ..FaultConfig::default()
    };
    let config = EstimationConfig {
        relative_error: 0.10,
        min_reading_mw: 0.0,
        sample_policy: SamplePolicy::Skip {
            max_discarded: 10_000,
        },
        ..EstimationConfig::default()
    };
    let session = EstimatorBuilder::new(config).build();
    let run = |kernel: KernelMode, n: usize| {
        let inner = SimulatorSource::new(
            &circuit,
            PairGenerator::Uniform,
            DelayModel::Zero,
            PowerConfig::default(),
        )
        .with_kernel(kernel);
        let factory = FaultInjectingSource::new(inner, faults).expect("valid fault mix");
        format!(
            "{:?}",
            session
                .run(
                    &factory,
                    RunOptions::default().seeded(3).workers(workers(n)),
                )
                .expect("faulted run converges")
        )
    };
    let reference = run(KernelMode::Scalar, 1);
    for n in [1usize, 2, 8] {
        for kernel in [KernelMode::Packed, KernelMode::Packed128] {
            assert_eq!(
                reference,
                run(kernel, n),
                "{kernel} kernel, {n} workers diverged under fault injection"
            );
        }
    }
}

/// Parallel runs attribute their work to per-worker telemetry lanes; the
/// committed accounting stays identical while the per-worker counters sum
/// to at least the committed hyper-samples (speculative work included).
#[test]
fn parallel_telemetry_attributes_work_to_worker_lanes() {
    let telemetry = Telemetry::enabled();
    let session = EstimatorBuilder::new(EstimationConfig::default())
        .telemetry(telemetry.clone())
        .build();
    let est = session
        .run(
            &weibull_source(),
            RunOptions::default().seeded(9).workers(workers(3)),
        )
        .expect("parallel run converges");
    telemetry.flush();
    let snap = telemetry.snapshot();
    let per_worker: u64 = (0..3)
        .map(|w| snap.counter(&names::worker_hyper_samples(w)))
        .sum();
    assert!(
        per_worker >= est.hyper_samples as u64,
        "workers generated {per_worker} hyper-samples, committed {}",
        est.hyper_samples
    );
    // Committed accounting is execution-independent even with telemetry on.
    assert_eq!(snap.counter(names::HYPER_SAMPLES), est.hyper_samples as u64);
}
