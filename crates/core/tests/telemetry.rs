//! Telemetry integration: the instrumented pipeline against the
//! acceptance contract — trace validity, exact unit accounting, monotone
//! convergence gauges, bit-identical estimates with telemetry on or off,
//! and cumulative metrics across checkpoint/resume.

use maxpower::telemetry::{
    diff_summaries, names, replay, JsonlSink, SharedBuffer, SpanKind, SubscriberSink, Telemetry,
};
use maxpower::{
    Checkpoint, EstimateReport, EstimationConfig, EstimatorBuilder, FnSource, RunOptions,
    RunStatus, SimulatorSource, TelemetrySummary,
};
use mpe_netlist::{generate, Iscas85};
use mpe_sim::{DelayModel, KernelMode, PowerConfig};
use mpe_vectors::PairGenerator;
use rand::{Rng, RngCore};

fn weibull_source(alpha: f64, beta: f64, mu: f64) -> impl FnMut(&mut dyn RngCore) -> f64 + Clone {
    move |rng: &mut dyn RngCore| {
        let u: f64 = rng.gen_range(1e-12..1.0f64);
        mu - (-u.ln() / beta).powf(1.0 / alpha)
    }
}

fn traced_run(seed: u64) -> (maxpower::MaxPowerEstimate, Telemetry, SharedBuffer) {
    let telemetry = Telemetry::enabled();
    let buf = SharedBuffer::new();
    telemetry.add_sink(Box::new(JsonlSink::new(buf.clone())));
    let source = FnSource::new(weibull_source(3.0, 1.0, 10.0));
    let session = EstimatorBuilder::new(EstimationConfig::default())
        .telemetry(telemetry.clone())
        .build();
    let estimate = session
        .run(&source, RunOptions::default().seeded(seed))
        .expect("run converges");
    telemetry.flush();
    (estimate, telemetry, buf)
}

/// The emitted JSONL trace must be schema-valid with correctly nested
/// spans, and its per-phase counts must match the estimate's own account
/// of the run.
#[test]
fn trace_is_schema_valid_with_correctly_nested_spans() {
    let (estimate, _telemetry, buf) = traced_run(42);
    assert_eq!(estimate.status, RunStatus::Converged);

    let text = buf.contents();
    let summary = replay(text.lines()).expect("trace must replay cleanly");
    assert!(summary.events > 0);
    // run > hyper_sample > simulate/fit.
    assert!(summary.max_depth >= 3, "depth {}", summary.max_depth);
    assert_eq!(summary.metrics.phase(SpanKind::Run).count, 1);
    assert_eq!(
        summary.metrics.phase(SpanKind::HyperSample).count,
        estimate.hyper_samples as u64
    );
    // One simulate + at least one fit span per hyper-sample attempt.
    let attempts = (estimate.hyper_samples + estimate.health.mle_retries) as u64;
    assert_eq!(summary.metrics.phase(SpanKind::Simulate).count, attempts);
    assert!(summary.metrics.phase(SpanKind::Fit).count >= estimate.hyper_samples as u64);
    // The trace and the in-memory registry agree event for event.
    let live = _telemetry.snapshot();
    assert_eq!(
        summary.metrics.counter(names::VECTOR_PAIRS_SIMULATED),
        live.counter(names::VECTOR_PAIRS_SIMULATED)
    );
}

/// Acceptance: the `vector_pairs_simulated` counter equals the
/// estimator's reported unit cost exactly — not approximately.
#[test]
fn vector_pairs_counter_equals_units_used_exactly() {
    for seed in [1u64, 7, 42, 1234] {
        let (estimate, telemetry, _buf) = traced_run(seed);
        let snap = telemetry.snapshot();
        assert_eq!(
            snap.counter(names::VECTOR_PAIRS_SIMULATED),
            estimate.units_used as u64,
            "seed {seed}: counter must equal units_used"
        );
        assert_eq!(
            snap.counter(names::HYPER_SAMPLES),
            estimate.hyper_samples as u64
        );
    }
}

/// Acceptance: for a fixed-seed run the CI half-width gauge series is
/// monotone non-increasing in k — the convergence signal the progress
/// line and the paper's stopping rule are built on.
#[test]
fn ci_half_width_series_is_monotone_for_fixed_seed() {
    let (estimate, telemetry, _buf) = traced_run(42);
    let snap = telemetry.snapshot();
    let widths = snap.gauge_series(names::CI_HALF_WIDTH_MW);
    // Emitted once per iteration from k = 2 on.
    assert_eq!(widths.len(), estimate.hyper_samples - 1);
    assert!(
        widths.windows(2).all(|w| w[1] <= w[0]),
        "half-width series must shrink monotonically: {widths:?}"
    );
    // The relative series ends below the configured target.
    let rel = snap.gauge_series(names::CI_RELATIVE_HALF_WIDTH);
    let last = rel.last().copied().expect("series non-empty");
    assert!(last <= EstimationConfig::default().relative_error);
}

/// Acceptance: telemetry must never perturb the estimation — a fixed-seed
/// run yields bit-identical results with telemetry enabled or disabled.
#[test]
fn telemetry_does_not_perturb_the_estimate() {
    let run = |telemetry: Telemetry| {
        let source = FnSource::new(weibull_source(3.0, 1.0, 10.0));
        let session = EstimatorBuilder::new(EstimationConfig::default())
            .telemetry(telemetry)
            .build();
        session
            .run(&source, RunOptions::default().seeded(42))
            .expect("run converges")
    };
    let silent = run(Telemetry::disabled());
    let traced = run(Telemetry::enabled());
    assert_eq!(silent.estimate_mw.to_bits(), traced.estimate_mw.to_bits());
    assert_eq!(silent.units_used, traced.units_used);
    assert_eq!(silent.hyper_samples, traced.hyper_samples);
    assert_eq!(
        silent.relative_error.to_bits(),
        traced.relative_error.to_bits()
    );
}

/// Satellite: a consumer tailing the bounded subscriber ring that never
/// polls must not stall the estimation loop — the producer evicts the
/// oldest events (counted as drops) and the run completes with the exact
/// result a silent run produces.
#[test]
fn stalled_subscriber_never_blocks_the_run() {
    let run = |telemetry: Telemetry| {
        let source = FnSource::new(weibull_source(3.0, 1.0, 10.0));
        let session = EstimatorBuilder::new(EstimationConfig::default())
            .telemetry(telemetry)
            .build();
        session
            .run(&source, RunOptions::default().seeded(42))
            .expect("run converges")
    };
    let silent = run(Telemetry::disabled());

    // A deliberately tiny ring with a subscriber that never drains it: a
    // worst-case stalled consumer. The run must still finish promptly.
    let (sink, hub) = SubscriberSink::bounded(8);
    let _stalled = hub.subscribe();
    let telemetry = Telemetry::enabled();
    telemetry.add_sink(Box::new(sink));
    let watched = run(telemetry);
    hub.close();

    assert_eq!(silent.estimate_mw.to_bits(), watched.estimate_mw.to_bits());
    assert_eq!(silent.units_used, watched.units_used);
    assert_eq!(silent.hyper_samples, watched.hyper_samples);
    assert!(
        hub.dropped() > 0,
        "an 8-slot ring under a full run must have evicted events"
    );
}

/// Tentpole acceptance: the per-hyper-sample audit trail in the trace
/// matches the estimate's own `fit_diagnostics` — one `fit_diag` event
/// per committed hyper-sample, in index order, same rung and reason.
#[test]
fn fit_diag_events_mirror_the_estimates_audit_trail() {
    let (estimate, _telemetry, buf) = traced_run(42);
    let text = buf.contents();
    let summary = replay(text.lines()).expect("trace must replay cleanly");

    assert_eq!(estimate.fit_diagnostics.len(), estimate.hyper_samples);
    assert_eq!(summary.fit_diags.len(), estimate.hyper_samples);
    for (k, (event, diag)) in summary
        .fit_diags
        .iter()
        .zip(&estimate.fit_diagnostics)
        .enumerate()
    {
        assert_eq!(event.k, k as u64, "audit events must be in index order");
        assert_eq!(event.rung, diag.rung.label());
        assert_eq!(event.reason, diag.reason.label());
        assert_eq!(
            event.log_likelihood.map(f64::to_bits),
            diag.log_likelihood.map(f64::to_bits)
        );
        assert_eq!(
            event.ks_distance.map(f64::to_bits),
            diag.ks_distance.map(f64::to_bits)
        );
        assert_eq!(
            event.tail_shape.map(f64::to_bits),
            diag.tail_shape.map(f64::to_bits)
        );
    }
}

/// Tentpole acceptance: replaying the JSONL trace alone reproduces the
/// report's telemetry block exactly — phase counts, totals, counters and
/// duration quantiles — so `mpe trace summarize` is as authoritative as
/// the report it never saw.
#[test]
fn trace_replay_reproduces_the_reports_telemetry_block() {
    let (estimate, telemetry, buf) = traced_run(42);
    let report = EstimateReport::new("weibull", "max_power_mw", &estimate)
        .with_telemetry(&telemetry.snapshot());
    let from_report = report.telemetry.expect("report carries telemetry");

    let text = buf.contents();
    let summary = replay(text.lines()).expect("trace must replay cleanly");
    let from_trace = TelemetrySummary::from_snapshot(&summary.metrics);

    assert_eq!(from_trace.phases, from_report.phases);
    assert_eq!(from_trace.quantiles, from_report.quantiles);
    for counter in &from_report.counters {
        assert_eq!(
            from_trace.counter(&counter.name),
            counter.value,
            "counter `{}` must replay from the trace alone",
            counter.name
        );
    }
}

/// Tentpole acceptance: two fixed-seed runs drift-diff clean — every
/// counter, gauge sample and audit event agrees bitwise (timings are
/// expected to differ and are excluded by `diff_summaries`).
#[test]
fn same_seed_traces_diff_with_zero_drift() {
    let (_, _, buf_a) = traced_run(42);
    let (_, _, buf_b) = traced_run(42);
    let a = replay(buf_a.contents().lines()).expect("trace a replays");
    let b = replay(buf_b.contents().lines()).expect("trace b replays");
    let drift = diff_summaries(&a, &b);
    assert!(drift.is_empty(), "unexpected drift: {drift:?}");
}

/// Satellite: a run interrupted at a checkpoint and resumed with a fresh
/// telemetry handle must report *cumulative* counters and phase counts —
/// identical in total to the uninterrupted run's.
#[test]
fn resumed_run_telemetry_accumulates_across_segments() {
    let config = EstimationConfig::default();
    let master_seed = 21;

    // Uninterrupted reference run.
    let full_telemetry = Telemetry::enabled();
    let source = FnSource::new(weibull_source(3.0, 1.0, 10.0));
    let full = EstimatorBuilder::new(config)
        .telemetry(full_telemetry.clone())
        .build()
        .run(&source, RunOptions::default().seeded(master_seed))
        .expect("reference run converges");

    // Interrupted run: capture the checkpoint written after k = 2.
    let first_telemetry = Telemetry::enabled();
    let source = FnSource::new(weibull_source(3.0, 1.0, 10.0));
    let mut at_two: Option<Checkpoint> = None;
    let mut save = |cp: &Checkpoint| {
        if cp.hyper_samples() == 2 {
            at_two = Some(cp.clone());
        }
    };
    EstimatorBuilder::new(config)
        .telemetry(first_telemetry.clone())
        .build()
        .run(
            &source,
            RunOptions::default()
                .seeded(master_seed)
                .save_with(&mut save),
        )
        .expect("first segment converges");
    let cp = at_two.expect("checkpoint at k = 2 captured");
    let summary = cp.telemetry.as_ref().expect("checkpoint carries telemetry");
    assert!(summary.counter(names::VECTOR_PAIRS_SIMULATED) > 0);

    // Resumed segment with a *fresh* telemetry handle.
    let resumed_telemetry = Telemetry::enabled();
    let source = FnSource::new(weibull_source(3.0, 1.0, 10.0));
    let resumed = EstimatorBuilder::new(config)
        .telemetry(resumed_telemetry.clone())
        .build()
        .run(
            &source,
            RunOptions::default().seeded(master_seed).resume(&cp),
        )
        .expect("resumed run converges");

    // The estimate itself is bit-identical (existing contract) …
    assert_eq!(full.estimate_mw.to_bits(), resumed.estimate_mw.to_bits());
    assert_eq!(full.units_used, resumed.units_used);

    // … and so is the cumulative telemetry: baseline (segment one, via the
    // checkpoint) plus the resumed segment equals the uninterrupted run.
    let full_snap = full_telemetry.snapshot();
    let resumed_snap = resumed_telemetry.snapshot();
    for name in [
        names::VECTOR_PAIRS_SIMULATED,
        names::HYPER_SAMPLES,
        names::MLE_RETRIES,
    ] {
        assert_eq!(
            resumed_snap.counter(name),
            full_snap.counter(name),
            "counter `{name}` must accumulate across resume"
        );
    }
    assert_eq!(
        resumed_snap.counter(names::VECTOR_PAIRS_SIMULATED),
        resumed.units_used as u64
    );
    assert_eq!(
        resumed_snap.phase(SpanKind::HyperSample).count,
        full_snap.phase(SpanKind::HyperSample).count,
        "hyper-sample span counts must accumulate across resume"
    );
    // Phase *durations* carry over too: the resumed registry already held
    // segment one's simulate time before the new segment added its own.
    assert!(
        resumed_snap.phase(SpanKind::Simulate).total_ns
            >= summary
                .phases
                .iter()
                .find(|p| p.phase == SpanKind::Simulate.label())
                .map_or(0, |p| p.total_ns),
    );
}

/// Acceptance for cross-hyper-sample lane batching: a packed source keeps
/// its sweep lanes ≥90% occupied (the unbatched baseline is n/LANES ≈ 47%
/// at n = 30 on 64 lanes), sequentially and under a worker pool, while a
/// scalar source emits no lane counters at all.
#[test]
fn packed_sources_fill_their_lanes() {
    let circuit = generate(Iscas85::C432, 7).expect("circuit generates");
    let config = EstimationConfig {
        relative_error: 0.10,
        min_reading_mw: 0.0,
        ..EstimationConfig::default()
    };
    let run = |kernel: KernelMode, workers: usize| {
        let telemetry = Telemetry::enabled();
        let source = SimulatorSource::new(
            &circuit,
            PairGenerator::Uniform,
            DelayModel::Zero,
            PowerConfig::default(),
        )
        .with_kernel(kernel);
        let session = EstimatorBuilder::new(config)
            .telemetry(telemetry.clone())
            .build();
        let mut opts = RunOptions::default().seeded(11);
        if workers > 1 {
            opts = opts.workers(std::num::NonZeroUsize::new(workers).expect("non-zero"));
        }
        session.run(&source, opts).expect("run converges");
        telemetry.flush();
        let snap = telemetry.snapshot();
        (
            snap.counter(maxpower::telemetry::names::LANE_WORDS_SWEPT),
            snap.counter(maxpower::telemetry::names::LANE_SLOTS_FILLED),
            snap.counter(maxpower::telemetry::names::LANE_SLOTS_CAPACITY),
        )
    };

    for workers in [1usize, 4] {
        let (words, filled, capacity) = run(KernelMode::Packed, workers);
        assert!(words > 0, "packed run must sweep lane words");
        assert!(capacity > 0);
        let occupancy = filled as f64 / capacity as f64;
        assert!(
            occupancy >= 0.90,
            "{workers} worker(s): lane occupancy {occupancy:.3} below 0.90 \
             (filled {filled} / capacity {capacity})"
        );
    }

    let (words, filled, capacity) = run(KernelMode::Scalar, 1);
    assert_eq!(
        (words, filled, capacity),
        (0, 0, 0),
        "scalar sources must not emit lane telemetry"
    );
}
