//! Property-based tests for the estimation engine's invariants.

use maxpower::{
    generate_hyper_sample, srs_max_estimate, srs_theoretical_units, EstimationConfig, FnSource,
    HyperSampleContext,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

fn bounded_source(mu: f64) -> impl FnMut(&mut dyn RngCore) -> f64 {
    move |rng: &mut dyn RngCore| {
        let r = rng;
        let u: f64 = r.gen_range(1e-12..1.0f64);
        mu - (-u.ln()).powf(1.0 / 3.0)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Hyper-samples never report below their own observed maximum and
    /// always consume exactly n·m units on clean sources.
    #[test]
    fn hyper_sample_invariants(mu in -100.0f64..100.0, seed in 0u64..500) {
        let mut source = FnSource::new(bounded_source(mu));
        let config = EstimationConfig::default();
        let mut rng = SmallRng::seed_from_u64(seed);
        let h = generate_hyper_sample(&mut source, &HyperSampleContext::new(&config), &mut rng).unwrap();
        prop_assert!(h.estimate_mw >= h.observed_max);
        prop_assert_eq!(h.units_used, 300);
        prop_assert_eq!(h.sample_maxima.len(), 10);
        let fit = h.fit.as_ref().expect("clean source yields a fit");
        prop_assert!(fit.distribution.mu() > fit.sample_max);
        // Shift equivariance of the whole pipeline: the estimate tracks mu.
        prop_assert!((h.estimate_mw - mu).abs() < 3.0);
    }

    /// The finite-population estimate never exceeds the infinite-population
    /// estimate for the same draws.
    #[test]
    fn finite_population_never_higher(seed in 0u64..300, v in 100u64..1_000_000) {
        let run = |finite: Option<u64>| {
            let mut source = FnSource::new(bounded_source(10.0));
            let config = EstimationConfig {
                finite_population: finite,
                ..EstimationConfig::default()
            };
            let mut rng = SmallRng::seed_from_u64(seed);
            generate_hyper_sample(&mut source, &HyperSampleContext::new(&config), &mut rng)
                .unwrap()
                .estimate_mw
        };
        prop_assert!(run(Some(v)) <= run(None) + 1e-9);
    }

    /// SRS estimates never exceed the source's true bound and are monotone
    /// (in distribution) in budget; spot check per-draw bound here.
    #[test]
    fn srs_bounded_by_endpoint(mu in -50.0f64..50.0, units in 1usize..500, seed in 0u64..200) {
        let mut source = FnSource::new(bounded_source(mu));
        let mut rng = SmallRng::seed_from_u64(seed);
        let r = srs_max_estimate(&mut source, units, &mut rng).unwrap();
        prop_assert!(r.estimate_mw <= mu);
        prop_assert_eq!(r.units_used, units);
    }

    /// The theoretical SRS cost formula is monotone: rarer qualified units
    /// or higher confidence always cost more.
    #[test]
    fn srs_cost_monotonicity(y in 1e-6f64..0.5, conf in 0.5f64..0.99) {
        let base = srs_theoretical_units(y, conf).unwrap();
        let rarer = srs_theoretical_units(y / 2.0, conf).unwrap();
        let surer = srs_theoretical_units(y, conf + 0.005).unwrap();
        prop_assert!(rarer > base);
        prop_assert!(surer > base);
        prop_assert!(base >= 1.0);
    }

    /// Config validation accepts exactly the documented domain.
    #[test]
    fn config_validation_total(
        n in 0usize..100,
        m in 0usize..100,
        conf in -0.5f64..1.5,
        eps in -0.5f64..1.5,
    ) {
        let config = EstimationConfig {
            sample_size: n,
            samples_per_hyper: m,
            confidence: conf,
            relative_error: eps,
            ..EstimationConfig::default()
        };
        let ok = config.validate().is_ok();
        let expect = n >= 2
            && m >= 5
            && conf > 0.0
            && conf < 1.0
            && eps > 0.0
            && eps < 1.0;
        prop_assert_eq!(ok, expect);
    }
}
