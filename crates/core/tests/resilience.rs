//! Resilience tests: the estimation engine against hostile power sources —
//! injected transient errors, NaN/∞/negative readings, dead sources — and
//! the checkpoint/resume contract under interruption.

use maxpower::{
    Checkpoint, EstimationConfig, EstimatorBuilder, EstimatorKind, FaultConfig,
    FaultInjectingSource, FnSource, MaxPowerError, PowerSource, RunOptions, RunStatus,
    SamplePolicy, SimulatorSource,
};
use mpe_netlist::{generate, Iscas85};
use mpe_sim::{DelayModel, PowerConfig};
use mpe_vectors::PairGenerator;
use rand::{Rng, RngCore};

fn weibull_source(alpha: f64, beta: f64, mu: f64) -> impl FnMut(&mut dyn RngCore) -> f64 {
    move |rng: &mut dyn RngCore| {
        let r = rng;
        let u: f64 = r.gen_range(1e-12..1.0f64);
        mu - (-u.ln() / beta).powf(1.0 / alpha)
    }
}

/// The headline integration scenario: a real gate-level simulation source
/// wrapped in a fault injector (10 % transient errors, 1 % NaN readings),
/// estimated under the Skip policy. The run must converge cleanly, and the
/// engine's health record must account for every injected fault, cross-
/// checked against the injector's own ground-truth ledger.
#[test]
fn fault_injected_circuit_run_converges_with_exact_accounting() {
    let circuit = generate(Iscas85::C432, 7).expect("circuit generates");
    let inner = SimulatorSource::new(
        &circuit,
        PairGenerator::Uniform,
        DelayModel::Zero,
        PowerConfig::default(),
    );
    let faults = FaultConfig {
        seed: 99,
        error_rate: 0.10,
        nan_rate: 0.01,
        ..FaultConfig::default()
    };
    let mut source = FaultInjectingSource::new(inner, faults).expect("valid fault mix");

    let config = EstimationConfig {
        relative_error: 0.10,
        sample_policy: SamplePolicy::Skip {
            max_discarded: 10_000,
        },
        min_reading_mw: 0.0,
        ..EstimationConfig::default()
    };
    let r = EstimatorBuilder::new(config)
        .build()
        .run_source(&mut source, RunOptions::default().seeded(5))
        .expect("run survives the fault mix");

    // Despite ~11% of calls being faulted, the run converges without
    // touching the fallback ladder.
    assert_eq!(r.status, RunStatus::Converged);
    assert!(r.relative_error <= 0.10);
    assert!(r.estimate_mw > 0.0 && r.estimate_mw.is_finite());
    assert!(r.hyper_estimators.iter().all(|&e| e == EstimatorKind::Mle));

    // Exact units accounting: every Ok reading costs one unit (including
    // the NaNs the Skip policy discards); errored calls cost nothing.
    let attempts = r.hyper_samples + r.health.mle_retries;
    assert_eq!(
        r.units_used,
        300 * attempts + r.health.samples_discarded,
        "units must count valid + discarded readings exactly"
    );

    // Cross-check against the injector's ground-truth ledger: the engine
    // saw (and survived) every fault the wrapper injected.
    let stats = *source.stats();
    assert!(stats.errors > 0, "error faults never fired");
    assert!(stats.nans > 0, "nan faults never fired");
    assert_eq!(r.health.source_errors, stats.errors + stats.stalls);
    assert_eq!(r.health.samples_discarded, stats.nans);
    assert_eq!(stats.infs + stats.negatives + stats.corruptions, 0);
    assert_eq!(r.units_used, stats.clean + stats.nans);
}

/// The same estimate with and without fault injection should agree: the
/// Skip policy replaces faulted draws with fresh i.i.d. ones, so faults
/// cost units but not accuracy.
#[test]
fn fault_injection_does_not_bias_the_estimate() {
    let run = |faulted: bool| {
        let inner = FnSource::new(weibull_source(3.0, 1.0, 10.0));
        let faults = FaultConfig {
            seed: 13,
            error_rate: if faulted { 0.10 } else { 0.0 },
            nan_rate: if faulted { 0.02 } else { 0.0 },
            ..FaultConfig::default()
        };
        let mut source = FaultInjectingSource::new(inner, faults).unwrap();
        let config = EstimationConfig {
            sample_policy: SamplePolicy::Skip {
                max_discarded: 10_000,
            },
            ..EstimationConfig::default()
        };
        EstimatorBuilder::new(config)
            .build()
            .run_source(&mut source, RunOptions::default().seeded(21))
            .unwrap()
    };
    let clean = run(false);
    let faulted = run(true);
    assert_eq!(clean.status, RunStatus::Converged);
    assert_eq!(faulted.status, RunStatus::Converged);
    // Both land near the true endpoint 10; fault injection shifts the RNG
    // stream so the estimates differ, but not the truth they target.
    assert!((clean.estimate_mw - 10.0).abs() / 10.0 < 0.10);
    assert!((faulted.estimate_mw - 10.0).abs() / 10.0 < 0.10);
}

#[test]
fn nan_source_fails_fast_under_default_policy() {
    let mut calls = 0usize;
    let mut source = FnSource::new(move |rng: &mut dyn RngCore| {
        calls += 1;
        if calls == 50 {
            f64::NAN
        } else {
            let r = rng;
            5.0 + r.gen::<f64>()
        }
    });
    let session = EstimatorBuilder::new(EstimationConfig::default()).build();
    match session.run_source(&mut source, RunOptions::default().seeded(1)) {
        Err(MaxPowerError::InvalidReading { value_mw }) => assert!(value_mw.is_nan()),
        other => panic!("expected InvalidReading, got {other:?}"),
    }
}

#[test]
fn infinite_reading_fails_fast_under_default_policy() {
    let mut calls = 0usize;
    let mut source = FnSource::new(move |rng: &mut dyn RngCore| {
        calls += 1;
        if calls == 50 {
            f64::INFINITY
        } else {
            let r = rng;
            5.0 + r.gen::<f64>()
        }
    });
    let session = EstimatorBuilder::new(EstimationConfig::default()).build();
    match session.run_source(&mut source, RunOptions::default().seeded(2)) {
        Err(MaxPowerError::InvalidReading { value_mw }) => {
            assert_eq!(value_mw, f64::INFINITY)
        }
        other => panic!("expected InvalidReading, got {other:?}"),
    }
}

/// Negative readings are only invalid below the configured floor: the
/// default `-∞` floor accepts them (the estimator is shift-equivariant),
/// while a physical deployment's `0.0` floor rejects them.
#[test]
fn negative_readings_gated_by_min_reading_floor() {
    // A parent shifted fully negative: endpoint −5, every draw < 0.
    let make = || FnSource::new(weibull_source(3.0, 1.0, -5.0));

    let mut source = make();
    let session = EstimatorBuilder::new(EstimationConfig::default()).build();
    let r = session
        .run_source(&mut source, RunOptions::default().seeded(3))
        .expect("negatives valid by default");
    assert!(r.status.met_target());
    assert!((r.estimate_mw - (-5.0)).abs() < 0.5, "{}", r.estimate_mw);

    let mut source = make();
    let config = EstimationConfig {
        min_reading_mw: 0.0,
        ..EstimationConfig::default()
    };
    let session = EstimatorBuilder::new(config).build();
    match session.run_source(&mut source, RunOptions::default().seeded(3)) {
        Err(MaxPowerError::InvalidReading { value_mw }) => assert!(value_mw < 0.0),
        other => panic!("expected InvalidReading, got {other:?}"),
    }
}

#[test]
fn intermittent_errors_survive_retry_policy() {
    let inner = FnSource::new(weibull_source(3.0, 1.0, 10.0));
    let faults = FaultConfig {
        seed: 4,
        error_rate: 0.20,
        ..FaultConfig::default()
    };
    let mut source = FaultInjectingSource::new(inner, faults).unwrap();
    let config = EstimationConfig {
        sample_policy: SamplePolicy::Retry { max_attempts: 10 },
        ..EstimationConfig::default()
    };
    let r = EstimatorBuilder::new(config)
        .build()
        .run_source(&mut source, RunOptions::default().seeded(4))
        .expect("retry policy rides out a 20% error rate");
    assert_eq!(r.status, RunStatus::Converged);
    assert!(r.health.source_errors > 0);
    assert!(r.health.sample_retries >= r.health.source_errors);
    // Errored calls consume no units: only valid readings are charged.
    let attempts = r.hyper_samples + r.health.mle_retries;
    assert_eq!(r.units_used, 300 * attempts + r.health.samples_discarded);
    assert_eq!(r.health.source_errors, source.stats().errors);
}

#[test]
fn dead_source_exhausts_retry_policy_with_its_own_error() {
    let inner = FnSource::new(|_: &mut dyn RngCore| 5.0);
    let faults = FaultConfig {
        seed: 5,
        error_rate: 1.0, // the source never answers
        ..FaultConfig::default()
    };
    let mut source = FaultInjectingSource::new(inner, faults).unwrap();
    let config = EstimationConfig {
        sample_policy: SamplePolicy::Retry { max_attempts: 3 },
        ..EstimationConfig::default()
    };
    let session = EstimatorBuilder::new(config).build();
    // The propagated error is the source's own, not a policy wrapper.
    match session.run_source(&mut source, RunOptions::default().seeded(5)) {
        Err(MaxPowerError::Source { message }) => {
            assert!(message.contains("injected"), "{message}")
        }
        other => panic!("expected Source error, got {other:?}"),
    }
}

#[test]
fn garbage_source_exhausts_skip_policy_cap() {
    let mut source = FnSource::new(|_: &mut dyn RngCore| f64::NAN);
    let config = EstimationConfig {
        sample_policy: SamplePolicy::Skip { max_discarded: 50 },
        ..EstimationConfig::default()
    };
    let session = EstimatorBuilder::new(config).build();
    match session.run_source(&mut source, RunOptions::default().seeded(6)) {
        Err(MaxPowerError::SamplePolicyExhausted {
            policy,
            count,
            limit,
        }) => {
            assert_eq!(policy, "skip");
            assert_eq!(limit, 50);
            assert_eq!(count, 51);
        }
        other => panic!("expected SamplePolicyExhausted, got {other:?}"),
    }
}

/// A run killed after any number of hyper-samples and resumed from its
/// last checkpoint must produce results bit-identical to the run that was
/// never interrupted — on a real gate-level simulation source.
#[test]
fn killed_and_resumed_circuit_run_matches_uninterrupted() {
    let circuit = generate(Iscas85::C432, 7).expect("circuit generates");
    let make_source = || {
        SimulatorSource::new(
            &circuit,
            PairGenerator::Uniform,
            DelayModel::Zero,
            PowerConfig::default(),
        )
    };
    let config = EstimationConfig {
        relative_error: 0.10,
        min_reading_mw: 0.0,
        ..EstimationConfig::default()
    };
    let session = EstimatorBuilder::new(config).build();

    // The uninterrupted reference run, recording every checkpoint.
    let mut checkpoints = Vec::new();
    let mut source = make_source();
    let mut record = |cp: &Checkpoint| checkpoints.push(cp.clone());
    let full = session
        .run_source(
            &mut source,
            RunOptions::default().seeded(42).save_with(&mut record),
        )
        .expect("reference run converges");
    assert!(full.hyper_samples >= 2);
    assert_eq!(checkpoints.len(), full.hyper_samples);

    // "Kill" the run after the first hyper-sample and resume: the tail of
    // the run is regenerated from per-index derived RNG streams, so the
    // final estimate is bit-identical.
    let cp = &checkpoints[0];
    let mut source = make_source();
    let resumed = session
        .run_source(&mut source, RunOptions::default().seeded(42).resume(cp))
        .expect("resumed run converges");
    assert_eq!(resumed.estimate_mw, full.estimate_mw);
    assert_eq!(resumed.confidence_interval, full.confidence_interval);
    assert_eq!(resumed.hyper_samples, full.hyper_samples);
    assert_eq!(resumed.units_used, full.units_used);
    assert_eq!(resumed.hyper_estimates, full.hyper_estimates);
    assert_eq!(resumed.status, full.status);
    // The resumed run only simulated the tail it was missing — plus, with
    // cross-hyper-sample lane batching, whatever spare-lane prefetch was
    // still banked (for hyper-samples beyond the stopping index) when the
    // run stopped. That speculation is bounded by the planning window:
    // lookahead plans × n×m readings each.
    let tail = full.units_used - checkpoints[0].units_used;
    let simulated = source.simulated() as usize;
    assert!(simulated >= tail, "resumed run under-simulated its tail");
    let config = EstimationConfig::default();
    let window = config.sample_size * config.samples_per_hyper;
    let lookahead = source.plan_lookahead(config.sample_size);
    assert!(
        simulated - tail <= lookahead * window,
        "speculative overshoot {} exceeds the planning window",
        simulated - tail
    );
}
