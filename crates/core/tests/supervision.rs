//! Supervision acceptance suite: cooperative cancellation, run budgets and
//! worker panic recovery must never change a single bit of the estimate.
//!
//! The load-bearing invariant throughout: hyper-sample `k` is a pure
//! function of `(config, master seed, k)`, so a run that is cancelled,
//! budget-capped or panic-requeued and then resumed/retried lands on
//! exactly the numbers the undisturbed run produces.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use maxpower::{
    CancelToken, Checkpoint, EstimationConfig, EstimatorBuilder, FnSource, MaxPowerError,
    PowerSource, RunBudget, RunOptions, RunStatus, Session, StopReason,
};
use rand::{Rng, RngCore};

fn weibull_source() -> FnSource<impl FnMut(&mut dyn RngCore) -> f64 + Clone + Send> {
    FnSource::new(|rng: &mut dyn RngCore| {
        let u: f64 = rng.gen_range(1e-12..1.0f64);
        10.0 - (-u.ln()).powf(1.0 / 3.0)
    })
}

fn workers(n: usize) -> NonZeroUsize {
    NonZeroUsize::new(n).expect("non-zero worker count")
}

fn session() -> Session {
    EstimatorBuilder::new(EstimationConfig::default()).build()
}

/// A run cancelled after `trip_after` committed hyper-samples (for any
/// worker count) returns a valid `Interrupted` partial result whose final
/// checkpoint resumes to the uninterrupted run's exact bytes.
#[test]
fn cancelled_run_resumes_bit_identically() {
    let session = session();
    let source = weibull_source();
    let full = session
        .run(&source, RunOptions::default().seeded(42))
        .expect("reference run converges");
    assert!(
        full.hyper_samples > 3,
        "need a run long enough to cancel mid-flight (got {})",
        full.hyper_samples
    );

    for n in [1usize, 3] {
        let token = CancelToken::new();
        let hook_token = token.clone();
        let trip_after = 2usize;
        let mut committed = 0usize;
        let mut last: Option<Checkpoint> = None;
        let mut save = |cp: &Checkpoint| {
            committed += 1;
            if committed >= trip_after {
                hook_token.cancel();
            }
            last = Some(cp.clone());
        };
        let partial = session
            .run(
                &source,
                RunOptions::default()
                    .seeded(42)
                    .workers(workers(n))
                    .cancel_token(token)
                    .save_with(&mut save),
            )
            .expect("cancellation with a committed prefix yields a partial estimate");
        assert!(
            matches!(
                partial.status,
                RunStatus::Interrupted {
                    reason: StopReason::Cancelled
                }
            ),
            "workers {n}: expected Interrupted(Cancelled), got {:?}",
            partial.status
        );
        assert!(partial.hyper_samples >= trip_after);
        assert!(
            partial.hyper_samples < full.hyper_samples,
            "workers {n}: cancellation must land before the natural stop"
        );

        // The final checkpoint covers exactly the committed prefix…
        let cp = last.expect("a final checkpoint was saved");
        assert_eq!(cp.hyper_samples(), partial.hyper_samples);
        // …and resuming it (single- or multi-worker) replays the rest of
        // the uninterrupted run bit-for-bit.
        for resume_workers in [1usize, 2] {
            let resumed = session
                .run(
                    &source,
                    RunOptions::default()
                        .seeded(42)
                        .workers(workers(resume_workers))
                        .resume(&cp),
                )
                .expect("resumed run converges");
            assert_eq!(
                format!("{full:?}"),
                format!("{resumed:?}"),
                "cancel at k={} under {n} workers, resume under {resume_workers}: diverged",
                partial.hyper_samples
            );
        }
    }
}

/// The hyper-sample budget counts *this segment's* commits: a sequential
/// run stops at exactly the budget, and the resumed remainder completes to
/// the uninterrupted result.
#[test]
fn hyper_sample_budget_stops_and_resumes_exactly() {
    let session = session();
    let source = weibull_source();
    let full = session
        .run(&source, RunOptions::default().seeded(7))
        .expect("reference run converges");
    assert!(full.hyper_samples > 2);

    let mut last: Option<Checkpoint> = None;
    let mut save = |cp: &Checkpoint| last = Some(cp.clone());
    let partial = session
        .run(
            &source,
            RunOptions::default()
                .seeded(7)
                .budget(RunBudget::none().with_max_hyper_samples(2))
                .save_with(&mut save),
        )
        .expect("budgeted run yields a partial estimate");
    assert_eq!(partial.hyper_samples, 2, "sequential budget is exact");
    assert!(matches!(
        partial.status,
        RunStatus::Interrupted {
            reason: StopReason::HyperSampleBudget
        }
    ));

    let cp = last.expect("checkpoint saved at the budget boundary");
    let resumed = session
        .run(&source, RunOptions::default().seeded(7).resume(&cp))
        .expect("resumed run converges");
    assert_eq!(format!("{full:?}"), format!("{resumed:?}"));

    // Parallel: the drain may commit a few buffered indices past the
    // budget, but determinism of the committed prefix still holds.
    let mut last: Option<Checkpoint> = None;
    let mut save = |cp: &Checkpoint| last = Some(cp.clone());
    let partial = session
        .run(
            &source,
            RunOptions::default()
                .seeded(7)
                .workers(workers(3))
                .budget(RunBudget::none().with_max_hyper_samples(2))
                .save_with(&mut save),
        )
        .expect("budgeted parallel run yields a partial estimate");
    assert!(partial.hyper_samples >= 2);
    if partial.hyper_samples < full.hyper_samples {
        assert!(matches!(
            partial.status,
            RunStatus::Interrupted {
                reason: StopReason::HyperSampleBudget
            }
        ));
    }
    let cp = last.expect("checkpoint saved");
    let resumed = session
        .run(&source, RunOptions::default().seeded(7).resume(&cp))
        .expect("resumed run converges");
    assert_eq!(format!("{full:?}"), format!("{resumed:?}"));
}

/// A deadline that has already expired interrupts before the first
/// hyper-sample: with fewer than two committed there is no valid partial
/// estimate, so the run surfaces the typed error instead.
#[test]
fn expired_deadline_interrupts_before_any_work() {
    let session = session();
    let result = session.run(
        &weibull_source(),
        RunOptions::default()
            .seeded(1)
            .budget(RunBudget::none().with_deadline(Duration::ZERO)),
    );
    match result {
        Err(MaxPowerError::Interrupted {
            reason: StopReason::DeadlineExceeded,
            hyper_samples,
        }) => assert_eq!(hyper_samples, 0),
        other => unreachable!("expected a deadline interruption, got {other:?}"),
    }
}

/// Wraps a source and panics exactly once, the first time hyper-sample
/// `target_k` is generated (on whichever worker picks it up). The shared
/// `fired` flag makes the requeued retry — and every clone — sail through.
#[derive(Clone)]
struct PanicOnce<S> {
    inner: S,
    target_k: u64,
    current_k: u64,
    fired: Arc<AtomicBool>,
}

impl<S> PanicOnce<S> {
    fn new(inner: S, target_k: u64) -> Self {
        PanicOnce {
            inner,
            target_k,
            current_k: u64::MAX,
            fired: Arc::new(AtomicBool::new(false)),
        }
    }
}

impl<S: PowerSource> PowerSource for PanicOnce<S> {
    fn sample(&mut self, rng: &mut dyn RngCore) -> Result<f64, MaxPowerError> {
        if self.current_k == self.target_k && !self.fired.swap(true, Ordering::SeqCst) {
            panic!("injected fault in hyper-sample {}", self.current_k);
        }
        self.inner.sample(rng)
    }

    fn begin_hyper_sample(&mut self, k: u64) {
        self.current_k = k;
        self.inner.begin_hyper_sample(k);
    }
}

/// Like [`PanicOnce`] but unconditional: every attempt at `target_k`
/// panics, modelling a deterministic bug that requeueing cannot outrun.
#[derive(Clone)]
struct PanicAlways<S> {
    inner: S,
    target_k: u64,
    current_k: u64,
}

impl<S: PowerSource> PowerSource for PanicAlways<S> {
    fn sample(&mut self, rng: &mut dyn RngCore) -> Result<f64, MaxPowerError> {
        if self.current_k == self.target_k {
            panic!("deterministic fault in hyper-sample {}", self.current_k);
        }
        self.inner.sample(rng)
    }

    fn begin_hyper_sample(&mut self, k: u64) {
        self.current_k = k;
        self.inner.begin_hyper_sample(k);
    }
}

/// The acceptance criterion verbatim: a worker panic mid-run is recovered
/// transparently — the estimate matches the panic-free run on every
/// statistical field, and the restart is recorded in `RunHealth`.
#[test]
fn worker_panic_is_recovered_bit_identically() {
    let session = session();
    let clean = session
        .run(
            &weibull_source(),
            RunOptions::default().seeded(13).workers(workers(3)),
        )
        .expect("panic-free run converges");

    let source = PanicOnce::new(weibull_source(), 1);
    let fired = source.fired.clone();
    let recovered = session
        .run(
            &source,
            RunOptions::default().seeded(13).workers(workers(3)),
        )
        .expect("panicking run recovers");

    assert!(fired.load(Ordering::SeqCst), "the injected panic fired");
    assert_eq!(clean.estimate_mw.to_bits(), recovered.estimate_mw.to_bits());
    assert_eq!(
        clean.observed_max_mw.to_bits(),
        recovered.observed_max_mw.to_bits()
    );
    assert_eq!(clean.hyper_samples, recovered.hyper_samples);
    assert_eq!(clean.units_used, recovered.units_used);
    assert_eq!(clean.hyper_estimates, recovered.hyper_estimates);
    assert_eq!(
        format!("{:?}", clean.history),
        format!("{:?}", recovered.history)
    );
    assert_eq!(clean.status, recovered.status);
    // The only permitted difference: the restart is on the record.
    assert_eq!(recovered.health.worker_restarts, 1);
    assert_eq!(clean.health.worker_restarts, 0);
}

/// A hyper-sample that panics on every attempt escalates to the typed
/// [`MaxPowerError::Panicked`] hard error instead of looping forever.
#[test]
fn deterministic_panic_escalates_to_hard_error() {
    let session = session();
    let source = PanicAlways {
        inner: weibull_source(),
        target_k: 1,
        current_k: u64::MAX,
    };
    let result = session.run(
        &source,
        RunOptions::default().seeded(13).workers(workers(4)),
    );
    match result {
        Err(MaxPowerError::Panicked { context, panics }) => {
            assert!(
                context.contains("hyper-sample 1"),
                "context names the poisoned index: {context}"
            );
            assert!(panics >= 2, "multiple requeue attempts recorded: {panics}");
        }
        other => unreachable!("expected escalation to Panicked, got {other:?}"),
    }
}

/// Wraps a source and sleeps once at `target_k`, long enough for the
/// stall watchdog to notice.
#[derive(Clone)]
struct SlowOnce<S> {
    inner: S,
    target_k: u64,
    current_k: u64,
    slept: Arc<AtomicBool>,
}

impl<S: PowerSource> PowerSource for SlowOnce<S> {
    fn sample(&mut self, rng: &mut dyn RngCore) -> Result<f64, MaxPowerError> {
        if self.current_k == self.target_k && !self.slept.swap(true, Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(400));
        }
        self.inner.sample(rng)
    }

    fn begin_hyper_sample(&mut self, k: u64) {
        self.current_k = k;
        self.inner.begin_hyper_sample(k);
    }
}

/// The stall watchdog is observability only: a wedged worker is reported
/// in `RunHealth` but the estimate is byte-identical to the healthy run.
#[test]
fn stall_watchdog_reports_without_changing_the_estimate() {
    let session = session();
    let clean = session
        .run(
            &weibull_source(),
            RunOptions::default().seeded(29).workers(workers(2)),
        )
        .expect("reference run converges");

    let source = SlowOnce {
        inner: weibull_source(),
        target_k: 1,
        current_k: u64::MAX,
        slept: Arc::new(AtomicBool::new(false)),
    };
    let watched = session
        .run(
            &source,
            RunOptions::default()
                .seeded(29)
                .workers(workers(2))
                .budget(RunBudget::none().with_stall_timeout(Duration::from_millis(50))),
        )
        .expect("stalled run still converges");

    assert!(
        watched.health.worker_stalls >= 1,
        "the 400 ms sleep against a 50 ms heartbeat timeout must be flagged"
    );
    assert_eq!(clean.estimate_mw.to_bits(), watched.estimate_mw.to_bits());
    assert_eq!(clean.hyper_samples, watched.hyper_samples);
    assert_eq!(clean.units_used, watched.units_used);
}

/// Supervision plumbing that is wired but never triggered costs nothing:
/// same bytes as a run with no supervision at all.
#[test]
fn untriggered_supervision_is_bit_identical_to_none() {
    let session = session();
    let source = weibull_source();
    let plain = session
        .run(&source, RunOptions::default().seeded(5).workers(workers(2)))
        .expect("plain run converges");
    let supervised = session
        .run(
            &source,
            RunOptions::default()
                .seeded(5)
                .workers(workers(2))
                .cancel_token(CancelToken::new())
                .budget(
                    RunBudget::none()
                        .with_deadline(Duration::from_secs(3600))
                        .with_max_hyper_samples(1_000_000),
                ),
        )
        .expect("supervised run converges");
    assert_eq!(format!("{plain:?}"), format!("{supervised:?}"));
}
