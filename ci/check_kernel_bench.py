#!/usr/bin/env python3
"""Bench-regression gate over the kernel smoke benchmark.

Reads the ``BENCH_kernel.json`` emitted by
``trace_breakdown --kernel-smoke`` and fails the build if the packed
kernels have regressed:

* every row must report ``identical: true`` — the packed kernels'
  *raison d'etre* is bit-identity with the scalar reference, so a
  single false is an instant failure;
* every row's speedup must clear a conservative per-delay-model floor.
  The floors sit well below locally measured numbers (zero-delay
  13.8x-34.9x, timing 7.3x-11.0x on a shared dev box) so that noisy CI
  runners don't flake, while a real regression — say the packed lane
  loop quietly falling back to per-lane evaluation — still trips them.

Usage: check_kernel_bench.py BENCH_kernel.json
"""

import json
import sys

# Conservative floors per delay model (see module docstring).
SPEEDUP_FLOORS = {
    "zero": 10.0,
    "unit": 4.0,
}
# Any unlisted delay model (e.g. a future fanout row) uses this floor.
DEFAULT_FLOOR = 3.0

EXPECTED_KERNELS = {"packed64", "packed128"}


def main(path):
    with open(path) as f:
        bench = json.load(f)

    rows = bench.get("rows", [])
    if not rows:
        print(f"FAIL: {path} has no benchmark rows")
        return 1

    kernels = {row["kernel"] for row in rows}
    missing = EXPECTED_KERNELS - kernels
    if missing:
        print(f"FAIL: benchmark is missing kernel rows for: {sorted(missing)}")
        return 1

    failures = []
    for row in rows:
        label = f"{row['circuit']:6s} {row['kernel']:9s} {row['delay_model']:5s}"
        floor = SPEEDUP_FLOORS.get(row["delay_model"], DEFAULT_FLOOR)
        speedup = row["speedup"]
        identical = row["identical"]
        status = "ok"
        if not identical:
            status = "NOT BIT-IDENTICAL"
            failures.append(f"{label}: packed readings diverged from scalar")
        elif speedup < floor:
            status = f"speedup {speedup:.2f}x below floor {floor:.1f}x"
            failures.append(f"{label}: {status}")
        print(f"{label}  speedup {speedup:7.2f}x  (floor {floor:4.1f}x)  {status}")

    if failures:
        print(f"\nFAIL: {len(failures)} kernel bench regression(s):")
        for f in failures:
            print(f"  - {f}")
        return 1

    print(f"\nOK: {len(rows)} rows bit-identical and above their speedup floors")
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__)
        sys.exit(2)
    sys.exit(main(sys.argv[1]))
