#!/usr/bin/env python3
"""Bench-regression gate over the packed-kernel smoke benchmarks.

Reads the JSON emitted by ``trace_breakdown --kernel-smoke``
(``BENCH_kernel.json``) and/or ``trace_breakdown --population-smoke``
(``BENCH_population.json``) and fails the build if the packed kernels
have regressed:

* every row must report ``identical: true`` — the packed kernels'
  *raison d'etre* is bit-identity with the scalar reference, so a
  single false is an instant failure;
* every row's speedup must clear a conservative per-delay-model floor.
  The floors sit well below locally measured numbers (kernel smoke:
  zero-delay 13.8x-34.9x, unit 7.3x-11.0x, fanout 5.5x-8.4x; population
  sweep: zero-delay 20x-44x, unit 7.5x-12x on a shared dev box) so that
  noisy CI runners don't flake, while a real regression — say the packed
  lane loop quietly falling back to per-lane evaluation, or the
  population path dropping back to per-pair dispatch — still trips them.

The gate dispatches floors on the file's ``benchmark`` field, so the
same script checks both artifacts.

Usage: check_kernel_bench.py BENCH_kernel.json [BENCH_population.json ...]
"""

import json
import sys

# Conservative per-delay-model floors, keyed by benchmark kind (see
# module docstring for the measured headroom).
SPEEDUP_FLOORS = {
    "kernel_smoke": {
        "zero": 10.0,
        "unit": 4.0,
        "fanout": 3.0,
    },
    "population_smoke": {
        "zero": 8.0,
        "unit": 3.0,
        "fanout": 2.5,
    },
}
# Any unlisted delay model or benchmark kind uses this floor.
DEFAULT_FLOOR = 2.5

EXPECTED_KERNELS = {"packed64", "packed128"}


def check(path):
    with open(path) as f:
        bench = json.load(f)

    benchmark = bench.get("benchmark", "kernel_smoke")
    floors = SPEEDUP_FLOORS.get(benchmark, {})
    print(f"== {path} ({benchmark}) ==")

    rows = bench.get("rows", [])
    if not rows:
        print(f"FAIL: {path} has no benchmark rows")
        return 1

    kernels = {row["kernel"] for row in rows}
    missing = EXPECTED_KERNELS - kernels
    if missing:
        print(f"FAIL: benchmark is missing kernel rows for: {sorted(missing)}")
        return 1

    failures = []
    for row in rows:
        label = f"{row['circuit']:6s} {row['kernel']:9s} {row['delay_model']:6s}"
        floor = floors.get(row["delay_model"], DEFAULT_FLOOR)
        speedup = row["speedup"]
        identical = row["identical"]
        status = "ok"
        if not identical:
            status = "NOT BIT-IDENTICAL"
            failures.append(f"{label}: packed readings diverged from scalar")
        elif speedup < floor:
            status = f"speedup {speedup:.2f}x below floor {floor:.1f}x"
            failures.append(f"{label}: {status}")
        print(f"{label}  speedup {speedup:7.2f}x  (floor {floor:4.1f}x)  {status}")

    if failures:
        print(f"\nFAIL: {len(failures)} {benchmark} regression(s):")
        for f in failures:
            print(f"  - {f}")
        return 1

    print(f"\nOK: {len(rows)} rows bit-identical and above their speedup floors")
    return 0


def main(paths):
    worst = 0
    for path in paths:
        worst = max(worst, check(path))
    return worst


if __name__ == "__main__":
    if len(sys.argv) < 2:
        print(__doc__)
        sys.exit(2)
    sys.exit(main(sys.argv[1:]))
